//! 2D wavefront tile subsystem — container v4: a seekable tile grid with
//! random-access crop decode and multi-core whole-image decode.
//!
//! The [`tiles`](crate::tiles) module scales the encoder across cores by
//! splitting the image into horizontal bands, but every decode still has
//! to consume the whole payload front to back. This module generalizes
//! the decomposition to a **2D grid** (configurable tile size, default
//! 256×256) and, crucially, records a **serialized tile index** right
//! after the container header: per tile a byte offset, a length, and a
//! CRC-32 checksum. The index makes every tile `O(1)`-seekable, which
//! buys two things the band format cannot offer:
//!
//! * **random access** — [`decode_roi`] reads *only* the tiles covering a
//!   requested rectangle (the seekable variant [`decode_roi_from`] never
//!   even reads the other tiles' bytes off the source), and
//! * **decode-side parallelism** — [`decompress_grid`] hands tiles to
//!   worker threads, the first parallel decode path in the repo (bands
//!   only parallelized the *encoder* usefully, since `CBTI` banded
//!   decode still slurps every band).
//!
//! # Container v4 layout
//!
//! ```text
//! offset  size   field
//! 0       23     fixed header (magic, version=4, codec id, dimensions,
//!                model parameters — identical to v1–v3, see `container`)
//! 23      1      sample bit depth (1..=16)
//! 24      1      lane count N (1..=32; v4 allows 1, unlike v3)
//! 25      4      tile width in pixels  (u32 LE)
//! 29      4      tile height in pixels (u32 LE)
//! 33      16×T   tile index: T = cols×rows row-major entries of
//!                  [0..8)   substream offset (u64 LE, relative to the
//!                           first byte after the index)
//!                  [8..12)  substream length in bytes (u32 LE)
//!                  [12..16) CRC-32 (IEEE) of the substream bytes
//! ...     ...    concatenated tile substreams, in index order
//! ```
//!
//! Each tile substream is exactly what the flat formats would carry for
//! that tile's pixels: the raw arithmetic payload for one coder lane, or
//! a per-tile lane length table (`N`×u32 LE) followed by the `N` lane
//! substreams for `N ≥ 2`. A 1×1 grid therefore carries the *same
//! payload bits* as the v3 (or v1/v2) container of the whole image —
//! asserted by this module's tests.
//!
//! Offsets are required to be cumulative (`offset[0] = 0`,
//! `offset[i] = offset[i-1] + len[i-1]`) so the index can never alias or
//! reorder substreams; any other arrangement is a structured
//! [`CodecError::InvalidHeader`], and a payload shorter than the index
//! promises is [`CodecError::Truncated`] — never a panic.
//!
//! # Wavefront scheduling
//!
//! Tiles are independent, so any order decodes correctly; workers claim
//! tiles from a shared atomic cursor (work stealing off one queue — an
//! idle worker always finds the next unclaimed tile) walked in
//! **anti-diagonal wavefront order**, the classic 2D dependency-free
//! sweep. Each worker owns a single resettable
//! [`EncoderState`]/[`DecoderState`] reused across every tile it claims
//! (a reset model is byte-identical to a fresh one — the session
//! invariant), so model-table allocations do not scale with tile count.
//! The schedule can never change the bytes: outputs are reassembled in
//! index order regardless of which worker coded what.
//!
//! # Examples
//!
//! ```
//! use cbic_core::grid::{compress_grid, decode_roi, decompress_grid, TileGeometry};
//! use cbic_core::CodecConfig;
//! use cbic_image::{corpus::CorpusImage, Parallelism, Rect};
//!
//! let img = CorpusImage::Lena.generate(64, 64);
//! let cfg = CodecConfig::default();
//! let bytes = compress_grid(
//!     img.view(),
//!     &cfg,
//!     TileGeometry::new(32, 32),
//!     1,
//!     Parallelism::Auto,
//! );
//! // Whole-image decode, tiles in parallel.
//! assert_eq!(decompress_grid(&bytes, Parallelism::Threads(4))?, img);
//! // Random-access crop: only the covering tiles are decoded.
//! let crop = decode_roi(&bytes, Rect::new(40, 8, 16, 20), Parallelism::Sequential)?;
//! assert_eq!(crop.dimensions(), (16, 20));
//! assert_eq!(crop.row(0), &img.row(8)[40..56]);
//! # Ok::<(), cbic_core::CodecError>(())
//! ```

use crate::codec::{CodecConfig, MAX_CODE_PADDING_BITS};
use crate::container::{
    header_bytes, read_header, read_lane_table, CodecError, ContainerHeader, HEADER_LEN,
    VERSION_V4, VERSION_V5,
};
use crate::engine::{DecoderState, EncoderState};
use cbic_arith::{BinaryDecoder, BinaryEncoder, LaneDecoder, LaneEncoder, MAX_LANES};
use cbic_bitio::{BitReader, BitWriter};
use cbic_image::{Image, ImageView, ImageViewMut, Parallelism, Rect};
use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default tile edge in pixels (256×256 tiles), chosen so a tile is large
/// enough to amortize model cold-start (~64 KP) yet small enough that a
/// 4K frame yields a healthy 15×9 grid for the scheduler.
pub const DEFAULT_TILE_SIZE: u32 = 256;

/// Ceiling on the tile count of one container. At the 256 MP image cap a
/// forged header could otherwise claim 2^28 1×1 tiles and demand a 4 GiB
/// index allocation; one million tiles covers every sane geometry (a
/// 16384×16384 image at 16×16 tiles) while bounding the index at 16 MiB.
pub const MAX_TILES: usize = 1 << 20;

/// Bytes of one serialized tile-index entry (offset u64 + len u32 + crc u32).
pub const INDEX_ENTRY_LEN: usize = 16;

/// The 2D tile partition of an image: tiles of `tile_w`×`tile_h` pixels,
/// laid out row-major; right/bottom edge tiles are clamped to the image.
///
/// # Examples
///
/// ```
/// use cbic_core::grid::TileGeometry;
///
/// let geom = TileGeometry::new(256, 256);
/// assert_eq!(geom.grid(1000, 600), (4, 3));
/// assert_eq!(geom.tile_rect(3, 2, 1000, 600), (768, 512, 232, 88));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGeometry {
    tile_w: u32,
    tile_h: u32,
}

impl Default for TileGeometry {
    /// [`DEFAULT_TILE_SIZE`]-square tiles.
    fn default() -> Self {
        Self::new(DEFAULT_TILE_SIZE, DEFAULT_TILE_SIZE)
    }
}

impl TileGeometry {
    /// Tiles of `tile_w`×`tile_h` pixels.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(tile_w: u32, tile_h: u32) -> Self {
        assert!(tile_w > 0 && tile_h > 0, "tile dimensions must be nonzero");
        Self { tile_w, tile_h }
    }

    /// Tile size in pixels, `(tile_w, tile_h)`.
    pub fn tile_size(&self) -> (u32, u32) {
        (self.tile_w, self.tile_h)
    }

    /// Grid shape `(cols, rows)` covering a `width`×`height` image.
    pub fn grid(&self, width: usize, height: usize) -> (usize, usize) {
        (
            width.div_ceil(self.tile_w as usize).max(1),
            height.div_ceil(self.tile_h as usize).max(1),
        )
    }

    /// Pixel rectangle `(x, y, w, h)` of the tile at `(col, row)` in a
    /// `width`×`height` image — edge tiles are clamped to the image.
    pub fn tile_rect(
        &self,
        col: usize,
        row: usize,
        width: usize,
        height: usize,
    ) -> (usize, usize, usize, usize) {
        let x = col * self.tile_w as usize;
        let y = row * self.tile_h as usize;
        let w = (self.tile_w as usize).min(width - x);
        let h = (self.tile_h as usize).min(height - y);
        (x, y, w, h)
    }
}

/// One tile's entry in the serialized index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileEntry {
    /// Byte offset of the tile's substream, relative to the first byte
    /// after the index. Entry `i`'s offset always equals the sum of the
    /// preceding lengths.
    pub offset: u64,
    /// Substream length in bytes.
    pub len: u32,
    /// CRC-32 (IEEE) of the substream bytes.
    pub crc32: u32,
}

/// The parsed (and validated) tile index of a v4 container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileIndex {
    /// Tile geometry declared by the header.
    pub geometry: TileGeometry,
    /// Grid columns (`ceil(width / tile_w)`).
    pub cols: usize,
    /// Grid rows (`ceil(height / tile_h)`).
    pub rows: usize,
    /// Image width in pixels (from the header; kept here so the index
    /// can answer geometry queries on its own).
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// One entry per tile, row-major.
    pub entries: Vec<TileEntry>,
}

impl TileIndex {
    /// Total payload bytes the index accounts for (the sum of every
    /// tile's length).
    pub fn payload_len(&self) -> u64 {
        self.entries
            .last()
            .map_or(0, |e| e.offset + u64::from(e.len))
    }

    /// Pixel rectangle `(x, y, w, h)` of the tile at `(col, row)`.
    pub fn tile_rect(&self, col: usize, row: usize) -> (usize, usize, usize, usize) {
        self.geometry.tile_rect(col, row, self.width, self.height)
    }

    /// Column/row ranges `(c0..=c1, r0..=r1)` of the tiles covering
    /// `roi`, which must lie inside the image.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidHeader`] for an empty or out-of-bounds
    /// rectangle.
    pub fn covering(&self, roi: Rect) -> Result<(usize, usize, usize, usize), CodecError> {
        check_roi(roi, self.width, self.height)?;
        let (tw, th) = self.geometry.tile_size();
        let c0 = roi.x as usize / tw as usize;
        let c1 = (roi.x + roi.w - 1) as usize / tw as usize;
        let r0 = roi.y as usize / th as usize;
        let r1 = (roi.y + roi.h - 1) as usize / th as usize;
        Ok((c0, c1, r0, r1))
    }

    /// Reads and validates a serialized index (`cols × rows` entries) off
    /// a stream positioned right after the v4 fixed header.
    fn read_from<R: Read + ?Sized>(
        input: &mut R,
        geometry: TileGeometry,
        width: usize,
        height: usize,
    ) -> Result<Self, CodecError> {
        let (cols, rows) = geometry.grid(width, height);
        let tiles = cols
            .checked_mul(rows)
            .filter(|&t| t <= MAX_TILES)
            .ok_or_else(|| {
                CodecError::InvalidHeader(format!(
                    "{cols}x{rows} tile grid exceeds the {MAX_TILES}-tile limit"
                ))
            })?;
        // `take` bounds the allocation by what the stream actually holds,
        // so a forged grid shape cannot trigger an oversized reservation.
        let mut raw = Vec::new();
        input
            .take((tiles * INDEX_ENTRY_LEN) as u64)
            .read_to_end(&mut raw)
            .map_err(|e| CodecError::io(&e))?;
        if raw.len() != tiles * INDEX_ENTRY_LEN {
            return Err(CodecError::Truncated);
        }
        let mut entries = Vec::with_capacity(tiles);
        let mut expected_offset = 0u64;
        for (i, chunk) in raw.chunks_exact(INDEX_ENTRY_LEN).enumerate() {
            let offset = u64::from_le_bytes(chunk[..8].try_into().expect("sized"));
            let len = u32::from_le_bytes(chunk[8..12].try_into().expect("sized"));
            let crc32 = u32::from_le_bytes(chunk[12..16].try_into().expect("sized"));
            if offset != expected_offset {
                return Err(CodecError::InvalidHeader(format!(
                    "tile {i} offset {offset} is not cumulative (expected {expected_offset})"
                )));
            }
            expected_offset += u64::from(len);
            entries.push(TileEntry { offset, len, crc32 });
        }
        Ok(Self {
            geometry,
            cols,
            rows,
            width,
            height,
            entries,
        })
    }
}

/// Rejects an empty or out-of-bounds region of interest with a
/// structured error naming both rectangles.
fn check_roi(roi: Rect, width: usize, height: usize) -> Result<(), CodecError> {
    let x1 = u64::from(roi.x) + u64::from(roi.w);
    let y1 = u64::from(roi.y) + u64::from(roi.h);
    if roi.w == 0 || roi.h == 0 || x1 > width as u64 || y1 > height as u64 {
        return Err(CodecError::InvalidHeader(format!(
            "ROI {}x{} at ({}, {}) outside the {width}x{height} image",
            roi.w, roi.h, roi.x, roi.y
        )));
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes` —
/// the checksum the tile index carries per substream.
///
/// # Examples
///
/// ```
/// use cbic_core::grid::crc32;
///
/// assert_eq!(crc32(b""), 0);
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[usize::from((crc as u8) ^ b)] ^ (crc >> 8);
    }
    !crc
}

/// Anti-diagonal wavefront enumeration of a `cols`×`rows` grid: all tiles
/// with `col + row == d` before any with `d + 1`, top to bottom within a
/// diagonal. Returns row-major indices (`row * cols + col`).
fn wavefront_order(cols: usize, rows: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(cols * rows);
    for d in 0..cols + rows - 1 {
        let r0 = d.saturating_sub(cols - 1);
        let r1 = d.min(rows - 1);
        for row in r0..=r1 {
            order.push(row * cols + (d - row));
        }
    }
    debug_assert_eq!(order.len(), cols * rows);
    order
}

/// Runs `job` over every index in `order` on `par`-many scoped workers.
/// Workers *claim* positions off a shared atomic cursor (work stealing
/// from one queue: a fast worker keeps claiming while a slow one finishes
/// its tile) and each owns one `make_state()` value reused across all its
/// claims. Outputs land in job-index order regardless of the schedule.
fn run_wavefront<O, S, G, F>(
    jobs: usize,
    order: &[usize],
    par: Parallelism,
    make_state: G,
    job: F,
) -> Vec<O>
where
    O: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> O + Sync,
{
    debug_assert_eq!(order.len(), jobs);
    let workers = par.workers(jobs);
    if workers <= 1 {
        let mut state = make_state();
        let mut outputs: Vec<Option<O>> = (0..jobs).map(|_| None).collect();
        for &idx in order {
            outputs[idx] = Some(job(&mut state, idx));
        }
        return outputs
            .into_iter()
            .map(|o| o.expect("every tile coded"))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut outputs: Vec<Option<O>> = (0..jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (cursor, make_state, job) = (&cursor, &make_state, &job);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut state = make_state();
                    let mut done = Vec::new();
                    loop {
                        let pos = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = order.get(pos) else { break };
                        done.push((idx, job(&mut state, idx)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (idx, out) in handle.join().expect("tile worker panicked") {
                outputs[idx] = Some(out);
            }
        }
    });
    outputs
        .into_iter()
        .map(|o| o.expect("every tile coded"))
        .collect()
}

/// Encodes one tile on a reused engine state, returning the framed
/// substream and its exact payload bits. With one lane the substream is
/// exactly the raw arithmetic payload ([`encode_raw`](crate::encode_raw)
/// of the tile view); with `lanes ≥ 2` it is the per-tile lane length
/// table followed by the lane substreams — the v3 payload framing.
fn encode_tile(state: &mut EncoderState, tile: ImageView<'_>, lanes: usize) -> (Vec<u8>, u64) {
    state.reset(tile.width(), tile.bit_depth());
    if lanes >= 2 {
        let mut enc = LaneEncoder::new(lanes);
        state.encode_view(tile, &mut enc);
        let (subs, bits) = enc.finish_with_bits();
        let body: usize = subs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(4 * lanes + body);
        for sub in &subs {
            let len = u32::try_from(sub.len()).expect("lane substream below 4 GiB");
            out.extend_from_slice(&len.to_le_bytes());
        }
        for sub in &subs {
            out.extend_from_slice(sub);
        }
        (out, bits)
    } else {
        let mut enc = BinaryEncoder::new(BitWriter::new());
        state.encode_view(tile, &mut enc);
        let writer = enc.finish();
        let bits = writer.bits_written();
        (writer.into_bytes(), bits)
    }
}

/// Decodes one tile substream on a reused engine state into a fresh
/// `w`×`h` tile image, mirroring [`encode_tile`]'s framing.
fn decode_tile(
    state: &mut DecoderState,
    hdr: &ContainerHeader,
    sub: &[u8],
    w: usize,
    h: usize,
) -> Result<Image, CodecError> {
    state.reset(w, hdr.bit_depth);
    let mut img = Image::with_depth(w, h, hdr.bit_depth);
    let padding = if hdr.lanes >= 2 {
        let lanes = usize::from(hdr.lanes);
        let mut source = sub;
        let lens = read_lane_table(&mut source, lanes)?;
        let mut subs = Vec::with_capacity(lanes);
        let mut pos = 0usize;
        for len in lens {
            let len = len as usize;
            subs.push(source.get(pos..pos + len).ok_or(CodecError::Truncated)?);
            pos += len;
        }
        if pos != source.len() {
            return Err(CodecError::InvalidHeader(
                "tile lane table does not account for the tile's bytes".into(),
            ));
        }
        let sources = subs.iter().map(|s| BitReader::new(s)).collect();
        let mut dec = LaneDecoder::new(sources);
        state.decode_into(&mut dec, &mut img.view_mut());
        dec.max_padding_bits()
    } else {
        let mut dec = BinaryDecoder::new(BitReader::new(sub));
        state.decode_into(&mut dec, &mut img.view_mut());
        dec.source().padding_bits()
    };
    if padding > MAX_CODE_PADDING_BITS {
        return Err(CodecError::Truncated);
    }
    Ok(img)
}

/// Copies a `w`×`h` window of `src` (anchored at `src_xy`) into `dst` at
/// `dst_xy` — the row-wise reassembly every tile decode shares, since
/// safe code cannot hand workers disjoint 2D windows of one buffer.
fn blit(
    dst: &mut ImageViewMut<'_>,
    dst_xy: (usize, usize),
    src: &Image,
    src_xy: (usize, usize),
    w: usize,
    h: usize,
) {
    let (dst_x, dst_y) = dst_xy;
    let (src_x, src_y) = src_xy;
    for y in 0..h {
        let src_row = &src.row(src_y + y)[src_x..src_x + w];
        dst.row_mut(dst_y + y)[dst_x..dst_x + w].copy_from_slice(src_row);
    }
}

/// Compresses a view into a version-4 grid container: fixed header, tile
/// index, then one independently decodable substream per tile, coded on
/// `par` worker threads in wavefront order. The bytes never depend on the
/// schedule.
///
/// # Examples
///
/// ```
/// use cbic_core::grid::{compress_grid, decompress_grid, TileGeometry};
/// use cbic_core::CodecConfig;
/// use cbic_image::{corpus::CorpusImage, Parallelism};
///
/// let img = CorpusImage::Barb.generate(48, 48);
/// let bytes = compress_grid(
///     img.view(),
///     &CodecConfig::default(),
///     TileGeometry::new(16, 16),
///     1,
///     Parallelism::Auto,
/// );
/// assert_eq!(bytes[4], 4, "version byte");
/// assert_eq!(decompress_grid(&bytes, Parallelism::Auto)?, img);
/// # Ok::<(), cbic_core::CodecError>(())
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid, `lanes` is outside
/// `1..=MAX_LANES`, the image exceeds the container's 2^28-pixel
/// ceiling, or the grid would exceed [`MAX_TILES`].
pub fn compress_grid(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    geom: TileGeometry,
    lanes: usize,
    par: Parallelism,
) -> Vec<u8> {
    compress_grid_with_bits(img, cfg, geom, lanes, par).0
}

/// [`compress_grid`] that also returns the exact entropy-coded payload
/// bits summed over every tile (flush tails included; excludes headers,
/// the index, and per-tile lane tables) — what the bench harness reports
/// as bits per pixel.
pub fn compress_grid_with_bits(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    geom: TileGeometry,
    lanes: usize,
    par: Parallelism,
) -> (Vec<u8>, u64) {
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "lane count {lanes} outside 1..=MAX_LANES"
    );
    let (width, height) = img.dimensions();
    crate::container::check_container_dimensions(width, height)
        .expect("image within the container's pixel ceiling");
    let (cols, rows) = geom.grid(width, height);
    let tiles = cols * rows;
    assert!(
        tiles <= MAX_TILES,
        "{cols}x{rows} tile grid exceeds the {MAX_TILES}-tile limit"
    );

    let order = wavefront_order(cols, rows);
    let bit_depth = img.bit_depth();
    let coded: Vec<(Vec<u8>, u64)> = run_wavefront(
        tiles,
        &order,
        par,
        || EncoderState::new(1, bit_depth, cfg),
        |state, idx| {
            let (col, row) = (idx % cols, idx / cols);
            let (x, y, w, h) = geom.tile_rect(col, row, width, height);
            encode_tile(state, img.crop(x, y, w, h), lanes)
        },
    );

    let payload_bits: u64 = coded.iter().map(|(_, bits)| bits).sum();
    let body: usize = coded.iter().map(|(sub, _)| sub.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + 12 + tiles * INDEX_ENTRY_LEN + body);
    if cfg.model.is_classic() {
        // The shared fixed-header serializer keeps the first 23 bytes
        // byte-identical to every other path; v4 then owns the extension.
        let (base, _) = header_bytes(cfg, width, height, bit_depth, 1);
        out.extend_from_slice(&base[..HEADER_LEN]);
        out[4] = VERSION_V4;
        out.push(bit_depth);
        out.push(lanes as u8);
    } else {
        // Non-classic models need the v5 model byte, so the grid rides
        // the full v5 header and flips its layout flag to "tiled".
        let (base, len) = header_bytes(cfg, width, height, bit_depth, lanes as u8);
        debug_assert_eq!(base[4], VERSION_V5);
        out.extend_from_slice(&base[..len]);
        let flag = out.len() - 1;
        out[flag] = 1;
    }
    let (tw, th) = geom.tile_size();
    out.extend_from_slice(&tw.to_le_bytes());
    out.extend_from_slice(&th.to_le_bytes());
    let mut offset = 0u64;
    for (sub, _) in &coded {
        let len = u32::try_from(sub.len()).expect("tile substream below 4 GiB");
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&crc32(sub).to_le_bytes());
        offset += u64::from(len);
    }
    for (sub, _) in &coded {
        out.extend_from_slice(sub);
    }
    (out, payload_bits)
}

/// Parses a version-4 container into its header, validated tile index,
/// and payload slice (the concatenated substreams).
///
/// # Errors
///
/// [`CodecError::InvalidHeader`] for non-v4 containers, impossible grid
/// shapes, non-cumulative index offsets, or trailing bytes beyond what
/// the index accounts for; [`CodecError::Truncated`] when the bytes end
/// inside the header, the index, or the promised payload.
pub fn parse_grid(bytes: &[u8]) -> Result<(ContainerHeader, TileIndex, &[u8]), CodecError> {
    let mut source = bytes;
    let hdr = read_header(&mut source)?;
    let Some((tile_w, tile_h)) = hdr.tile else {
        return Err(CodecError::InvalidHeader(
            "not a version-4 tiled container".into(),
        ));
    };
    let geom = TileGeometry::new(tile_w, tile_h);
    let index = TileIndex::read_from(&mut source, geom, hdr.width, hdr.height)?;
    let promised = index.payload_len();
    match (source.len() as u64).cmp(&promised) {
        std::cmp::Ordering::Less => Err(CodecError::Truncated),
        std::cmp::Ordering::Greater => Err(CodecError::InvalidHeader(format!(
            "{} payload bytes but the tile index accounts for {promised}",
            source.len()
        ))),
        std::cmp::Ordering::Equal => Ok((hdr, index, source)),
    }
}

/// The substream slice of tile `idx`, CRC-checked against its index entry.
fn tile_substream<'a>(
    index: &TileIndex,
    payload: &'a [u8],
    idx: usize,
) -> Result<&'a [u8], CodecError> {
    let entry = &index.entries[idx];
    let start = entry.offset as usize;
    let sub = payload
        .get(start..start + entry.len as usize)
        .ok_or(CodecError::Truncated)?;
    if crc32(sub) != entry.crc32 {
        return Err(CodecError::InvalidHeader(format!(
            "tile ({}, {}) checksum mismatch",
            idx % index.cols,
            idx / index.cols
        )));
    }
    Ok(sub)
}

/// Decodes every tile of a parsed v4 container into one image, tiles on
/// `par` workers. Each worker decodes into per-tile buffers (safe code
/// cannot split one buffer into disjoint 2D windows), reassembled
/// row-wise afterwards — the copy is linear in pixels and vanishes next
/// to the arithmetic decode.
fn decode_all_tiles(
    hdr: &ContainerHeader,
    index: &TileIndex,
    payload: &[u8],
    par: Parallelism,
) -> Result<Image, CodecError> {
    let tiles = index.entries.len();
    let order = wavefront_order(index.cols, index.rows);
    let decoded: Vec<Result<Image, CodecError>> = run_wavefront(
        tiles,
        &order,
        par,
        || DecoderState::new(1, hdr.bit_depth, &hdr.cfg),
        |state, idx| {
            let sub = tile_substream(index, payload, idx)?;
            let (_, _, w, h) = index.tile_rect(idx % index.cols, idx / index.cols);
            decode_tile(state, hdr, sub, w, h)
        },
    );
    let mut out = Image::with_depth(hdr.width, hdr.height, hdr.bit_depth);
    let mut view = out.view_mut();
    for (idx, tile) in decoded.into_iter().enumerate() {
        let tile = tile?;
        let (x, y, w, h) = index.tile_rect(idx % index.cols, idx / index.cols);
        blit(&mut view, (x, y), &tile, (0, 0), w, h);
    }
    Ok(out)
}

/// Decompresses a version-4 grid container produced by [`compress_grid`],
/// decoding tiles on `par` worker threads — the repo's first decode-side
/// parallelism. The pixels never depend on the schedule.
///
/// # Errors
///
/// As [`parse_grid`], plus [`CodecError::Truncated`] when a tile's
/// arithmetic payload ends before its pixels do and
/// [`CodecError::InvalidHeader`] on a checksum mismatch.
pub fn decompress_grid(bytes: &[u8], par: Parallelism) -> Result<Image, CodecError> {
    let (hdr, index, payload) = parse_grid(bytes)?;
    decode_all_tiles(&hdr, &index, payload, par)
}

/// Decodes a v4 container whose fixed header was already consumed off
/// `input` — the dispatch point for the streaming entry paths
/// ([`decompress_from`](crate::stream::decompress_from), the sessions,
/// [`Proposed::decode`](crate::Proposed)). The index and payload are
/// buffered (random access needs them resident), then decoded like
/// [`decompress_grid`].
pub(crate) fn decode_grid_after_header<R: Read + ?Sized>(
    hdr: &ContainerHeader,
    input: &mut R,
    par: Parallelism,
) -> Result<Image, CodecError> {
    let Some((tile_w, tile_h)) = hdr.tile else {
        return Err(CodecError::InvalidHeader(
            "not a version-4 tiled container".into(),
        ));
    };
    let geom = TileGeometry::new(tile_w, tile_h);
    let index = TileIndex::read_from(input, geom, hdr.width, hdr.height)?;
    let promised = index.payload_len();
    let mut payload = Vec::new();
    input
        .take(promised)
        .read_to_end(&mut payload)
        .map_err(|e| CodecError::io(&e))?;
    if (payload.len() as u64) < promised {
        return Err(CodecError::Truncated);
    }
    decode_all_tiles(hdr, &index, &payload, par)
}

/// Decodes the covering tiles of `roi` and assembles the crop.
fn decode_roi_tiles(
    hdr: &ContainerHeader,
    index: &TileIndex,
    roi: Rect,
    subs: &[(usize, &[u8])],
    par: Parallelism,
) -> Result<Image, CodecError> {
    // Wavefront over the covering sub-grid: `subs` is already in
    // row-major covering order, so claim positions directly.
    let order: Vec<usize> = (0..subs.len()).collect();
    let decoded: Vec<Result<Image, CodecError>> = run_wavefront(
        subs.len(),
        &order,
        par,
        || DecoderState::new(1, hdr.bit_depth, &hdr.cfg),
        |state, i| {
            let (idx, sub) = subs[i];
            let (_, _, w, h) = index.tile_rect(idx % index.cols, idx / index.cols);
            decode_tile(state, hdr, sub, w, h)
        },
    );
    let mut out = Image::with_depth(roi.w as usize, roi.h as usize, hdr.bit_depth);
    let mut view = out.view_mut();
    let (rx, ry) = (roi.x as usize, roi.y as usize);
    let (rw, rh) = (roi.w as usize, roi.h as usize);
    for (&(idx, _), tile) in subs.iter().zip(decoded) {
        let tile = tile?;
        let (tx, ty, tw, th) = index.tile_rect(idx % index.cols, idx / index.cols);
        // Intersection of the tile with the ROI, in both coordinate frames.
        let x0 = rx.max(tx);
        let y0 = ry.max(ty);
        let x1 = (rx + rw).min(tx + tw);
        let y1 = (ry + rh).min(ty + th);
        blit(
            &mut view,
            (x0 - rx, y0 - ry),
            &tile,
            (x0 - tx, y0 - ty),
            x1 - x0,
            y1 - y0,
        );
    }
    Ok(out)
}

/// Row-major indices of the tiles covering `roi`.
fn covering_indices(index: &TileIndex, roi: Rect) -> Result<Vec<usize>, CodecError> {
    let (c0, c1, r0, r1) = index.covering(roi)?;
    let mut indices = Vec::with_capacity((c1 - c0 + 1) * (r1 - r0 + 1));
    for row in r0..=r1 {
        for col in c0..=c1 {
            indices.push(row * index.cols + col);
        }
    }
    Ok(indices)
}

/// Random-access crop decode: decodes **only** the tiles covering `roi`
/// out of a version-4 container and returns the exact `roi.w`×`roi.h`
/// crop — identical to cropping a full decode, at the cost of the
/// covering tiles alone.
///
/// # Errors
///
/// As [`parse_grid`], plus [`CodecError::InvalidHeader`] for an empty or
/// out-of-bounds rectangle.
pub fn decode_roi(bytes: &[u8], roi: Rect, par: Parallelism) -> Result<Image, CodecError> {
    let (hdr, index, payload) = parse_grid(bytes)?;
    let indices = covering_indices(&index, roi)?;
    let mut subs = Vec::with_capacity(indices.len());
    for idx in indices {
        subs.push((idx, tile_substream(&index, payload, idx)?));
    }
    decode_roi_tiles(&hdr, &index, roi, &subs, par)
}

/// [`decode_roi`] over any container version: tile-selective on v4,
/// full-decode-then-crop on the flat v1–v3 formats (they have no index
/// to seek by). Either way the result is exactly the `roi` crop.
///
/// # Errors
///
/// As [`decode_roi`] / [`decompress`](crate::decompress).
pub fn decode_roi_any(bytes: &[u8], roi: Rect, par: Parallelism) -> Result<Image, CodecError> {
    let (hdr, _) = crate::container::parse_header(bytes)?;
    if hdr.tile.is_some() {
        return decode_roi(bytes, roi, par);
    }
    check_roi(roi, hdr.width, hdr.height)?;
    let img = crate::container::decompress(bytes)?;
    Ok(img
        .view()
        .crop(
            roi.x as usize,
            roi.y as usize,
            roi.w as usize,
            roi.h as usize,
        )
        .to_image())
}

/// [`decode_roi`] over a seekable source: reads the header and index,
/// then **seeks straight to the covering tiles** — the bytes of every
/// other tile are never read, which is what makes crop decodes of huge
/// archive files cheap (asserted by the counting-reader test). The
/// source's final position is unspecified.
///
/// # Errors
///
/// As [`decode_roi`]; transport failures surface as [`CodecError::Io`].
/// A source whose length disagrees with the tile index is
/// [`CodecError::Truncated`] (shorter) or a structured
/// [`CodecError::InvalidHeader`] (trailing bytes).
pub fn decode_roi_from<R: Read + Seek>(
    input: &mut R,
    roi: Rect,
    par: Parallelism,
) -> Result<Image, CodecError> {
    let hdr = read_header(input)?;
    let Some((tile_w, tile_h)) = hdr.tile else {
        return Err(CodecError::InvalidHeader(
            "not a version-4 tiled container".into(),
        ));
    };
    let geom = TileGeometry::new(tile_w, tile_h);
    let index = TileIndex::read_from(input, geom, hdr.width, hdr.height)?;
    let base = input.stream_position().map_err(|e| CodecError::io(&e))?;
    // Validate the source length against the index *by seeking*, not
    // reading: the whole point of the index is that non-covering tiles'
    // bytes stay untouched.
    let end = input
        .seek(SeekFrom::End(0))
        .map_err(|e| CodecError::io(&e))?;
    let promised = index.payload_len();
    match (end - base).cmp(&promised) {
        std::cmp::Ordering::Less => return Err(CodecError::Truncated),
        std::cmp::Ordering::Greater => {
            return Err(CodecError::InvalidHeader(format!(
                "{} payload bytes but the tile index accounts for {promised}",
                end - base
            )))
        }
        std::cmp::Ordering::Equal => {}
    }
    let indices = covering_indices(&index, roi)?;
    let mut bufs: Vec<(usize, Vec<u8>)> = Vec::with_capacity(indices.len());
    for idx in indices {
        let entry = &index.entries[idx];
        input
            .seek(SeekFrom::Start(base + entry.offset))
            .map_err(|e| CodecError::io(&e))?;
        let mut buf = Vec::new();
        input
            .take(u64::from(entry.len))
            .read_to_end(&mut buf)
            .map_err(|e| CodecError::io(&e))?;
        if buf.len() != entry.len as usize {
            return Err(CodecError::Truncated);
        }
        if crc32(&buf) != entry.crc32 {
            return Err(CodecError::InvalidHeader(format!(
                "tile ({}, {}) checksum mismatch",
                idx % index.cols,
                idx / index.cols
            )));
        }
        bufs.push((idx, buf));
    }
    let subs: Vec<(usize, &[u8])> = bufs.iter().map(|(i, b)| (*i, b.as_slice())).collect();
    decode_roi_tiles(&hdr, &index, roi, &subs, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{compress_with_lanes, decompress, parse_header, MAX_HEADER_LEN};
    use cbic_image::corpus::CorpusImage;
    use std::io::Cursor;

    fn geom(tw: u32, th: u32) -> TileGeometry {
        TileGeometry::new(tw, th)
    }

    #[test]
    fn wavefront_order_visits_every_tile_once_in_diagonal_order() {
        for (cols, rows) in [(1, 1), (1, 5), (5, 1), (3, 4), (7, 7)] {
            let order = wavefront_order(cols, rows);
            assert_eq!(order.len(), cols * rows);
            let mut seen = vec![false; cols * rows];
            let mut last_diag = 0;
            for idx in order {
                assert!(!seen[idx], "tile {idx} visited twice");
                seen[idx] = true;
                let diag = idx % cols + idx / cols;
                assert!(diag >= last_diag, "diagonals must not regress");
                last_diag = diag;
            }
            assert!(seen.into_iter().all(|s| s), "{cols}x{rows}");
        }
    }

    #[test]
    fn grid_roundtrip_various_geometries() {
        let img = CorpusImage::Goldhill.generate(48, 40);
        let cfg = CodecConfig::default();
        for (tw, th) in [(48, 40), (16, 16), (17, 13), (48, 8), (8, 40), (1, 1000)] {
            let bytes = compress_grid(img.view(), &cfg, geom(tw, th), 1, Parallelism::Sequential);
            assert_eq!(
                decompress_grid(&bytes, Parallelism::Sequential).unwrap(),
                img,
                "{tw}x{th} tiles"
            );
        }
    }

    #[test]
    fn deep_and_shallow_depths_roundtrip() {
        let cfg = CodecConfig::default();
        for depth in [1u8, 4, 8, 12, 16] {
            let max = if depth == 16 {
                u16::MAX as u32
            } else {
                (1 << depth) - 1
            };
            let img = Image::from_fn16(37, 29, depth, |x, y| {
                ((x as u32 * 977 + y as u32 * 331) % (max + 1)) as u16
            });
            let bytes = compress_grid(img.view(), &cfg, geom(16, 16), 1, Parallelism::Auto);
            let back = decompress_grid(&bytes, Parallelism::Auto).unwrap();
            assert_eq!(back, img, "depth {depth}");
            assert_eq!(back.bit_depth(), depth);
        }
    }

    #[test]
    fn lanes_compose_with_the_grid() {
        let img = CorpusImage::Barb.generate(40, 40);
        let cfg = CodecConfig::default();
        for lanes in [2usize, 4, 8] {
            let bytes = compress_grid(img.view(), &cfg, geom(16, 16), lanes, Parallelism::Auto);
            let (hdr, _, _) = parse_grid(&bytes).unwrap();
            assert_eq!(hdr.lanes as usize, lanes);
            assert_eq!(
                decompress_grid(&bytes, Parallelism::Threads(3)).unwrap(),
                img,
                "lanes={lanes}"
            );
        }
    }

    #[test]
    fn parallel_encode_is_byte_identical_to_sequential() {
        let img = CorpusImage::Mandrill.generate(50, 34);
        let cfg = CodecConfig::default();
        let seq = compress_grid(img.view(), &cfg, geom(16, 16), 1, Parallelism::Sequential);
        for par in [
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Auto,
        ] {
            assert_eq!(
                compress_grid(img.view(), &cfg, geom(16, 16), 1, par),
                seq,
                "{par:?}"
            );
        }
        // And the parallel decoder agrees with the sequential one.
        assert_eq!(
            decompress_grid(&seq, Parallelism::Threads(4)).unwrap(),
            decompress_grid(&seq, Parallelism::Sequential).unwrap()
        );
    }

    #[test]
    fn one_by_one_grid_carries_the_flat_payload_bits() {
        // The acceptance pin: a 1x1 grid's single substream is exactly the
        // flat container's payload — for one lane (v1 payload) and for
        // striped lanes (v3 lane table + substreams).
        let images = [
            CorpusImage::Lena.generate(32, 32),
            Image::from_fn16(24, 18, 12, |x, y| (x * 150 + y) as u16),
        ];
        let cfg = CodecConfig::default();
        for img in &images {
            for lanes in [1usize, 4] {
                let g = geom(img.width() as u32, img.height() as u32);
                let grid = compress_grid(img.view(), &cfg, g, lanes, Parallelism::Sequential);
                let flat = compress_with_lanes(img.view(), &cfg, lanes);
                let (hdr, payload) = parse_header(&flat).unwrap();
                assert_eq!(hdr.tile, None);
                let (ghdr, index, gpayload) = parse_grid(&grid).unwrap();
                assert_eq!((index.cols, index.rows), (1, 1));
                assert_eq!(ghdr.cfg, hdr.cfg);
                assert_eq!(
                    gpayload, payload,
                    "1x1 grid must carry the flat payload bits (lanes={lanes})"
                );
            }
        }
    }

    #[test]
    fn index_entries_are_cumulative_and_crc_checked() {
        let img = CorpusImage::Lena.generate(40, 40);
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            1,
            Parallelism::Sequential,
        );
        let (_, index, payload) = parse_grid(&bytes).unwrap();
        assert_eq!((index.cols, index.rows), (3, 3));
        let mut expected = 0u64;
        for (i, e) in index.entries.iter().enumerate() {
            assert_eq!(e.offset, expected, "entry {i}");
            let sub = &payload[e.offset as usize..(e.offset + u64::from(e.len)) as usize];
            assert_eq!(crc32(sub), e.crc32, "entry {i} checksum");
            expected += u64::from(e.len);
        }
        assert_eq!(expected, payload.len() as u64);
    }

    #[test]
    fn decompress_dispatches_v4() {
        // The universal slice decoder must route v4 to the grid path.
        let img = CorpusImage::Zelda.generate(33, 47);
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            4,
            Parallelism::Auto,
        );
        assert_eq!(decompress(&bytes).unwrap(), img);
    }

    #[test]
    fn corrupt_index_and_payload_error_structurally() {
        let img = CorpusImage::Boat.generate(32, 32);
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            1,
            Parallelism::Sequential,
        );
        let index_start = MAX_HEADER_LEN + 8;
        // Truncations: inside the tile-geometry words, inside the index,
        // and inside the payload all surface as Truncated.
        for cut in [MAX_HEADER_LEN + 3, index_start + 7, bytes.len() - 1] {
            assert_eq!(
                decompress_grid(&bytes[..cut], Parallelism::Sequential),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
        // A non-cumulative offset is an InvalidHeader, not a panic.
        let mut bad = bytes.clone();
        bad[index_start] ^= 1;
        assert!(matches!(
            decompress_grid(&bad, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // A flipped payload byte trips the tile checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let err = decompress_grid(&bad, Parallelism::Sequential).unwrap_err();
        assert!(
            matches!(&err, CodecError::InvalidHeader(m) if m.contains("checksum")),
            "{err:?}"
        );
        // Trailing bytes beyond the index's accounting are rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            decompress_grid(&bad, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // Zero tile dimensions are rejected at the header.
        let mut bad = bytes;
        bad[MAX_HEADER_LEN..MAX_HEADER_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decompress_grid(&bad, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn forged_grid_shapes_are_rejected_before_allocation() {
        let img = CorpusImage::Boat.generate(32, 32);
        let mut bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            1,
            Parallelism::Sequential,
        );
        // Forge 1x1-pixel tiles over a claimed-huge image: the tile-count
        // cap must reject it before any index-sized allocation.
        bytes[6..10].copy_from_slice(&(1u32 << 14).to_le_bytes());
        bytes[10..14].copy_from_slice(&(1u32 << 14).to_le_bytes());
        bytes[MAX_HEADER_LEN..MAX_HEADER_LEN + 4].copy_from_slice(&1u32.to_le_bytes());
        bytes[MAX_HEADER_LEN + 4..MAX_HEADER_LEN + 8].copy_from_slice(&1u32.to_le_bytes());
        let err = decompress_grid(&bytes, Parallelism::Sequential).unwrap_err();
        assert!(
            matches!(&err, CodecError::InvalidHeader(m) if m.contains("tile")),
            "{err:?}"
        );
    }

    #[test]
    fn roi_equals_crop_of_full_decode() {
        let img = CorpusImage::Barb.generate(64, 48);
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            1,
            Parallelism::Sequential,
        );
        let full = decompress_grid(&bytes, Parallelism::Sequential).unwrap();
        for roi in [
            Rect::new(0, 0, 64, 48),   // full image
            Rect::new(17, 5, 1, 1),    // single pixel
            Rect::new(15, 15, 18, 18), // straddles four tile boundaries
            Rect::new(48, 32, 16, 16), // exactly the last tile
            Rect::new(0, 47, 64, 1),   // bottom row
        ] {
            let crop = decode_roi(&bytes, roi, Parallelism::Sequential).unwrap();
            let reference = full
                .view()
                .crop(
                    roi.x as usize,
                    roi.y as usize,
                    roi.w as usize,
                    roi.h as usize,
                )
                .to_image();
            assert_eq!(crop, reference, "{roi:?}");
            // The seekable path agrees.
            let mut cursor = Cursor::new(&bytes);
            let seeked = decode_roi_from(&mut cursor, roi, Parallelism::Sequential).unwrap();
            assert_eq!(seeked, reference, "seek path, {roi:?}");
        }
    }

    #[test]
    fn roi_rejects_out_of_bounds_rects() {
        let img = CorpusImage::Lena.generate(32, 32);
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            geom(16, 16),
            1,
            Parallelism::Sequential,
        );
        for roi in [
            Rect::new(0, 0, 0, 4),
            Rect::new(0, 0, 33, 1),
            Rect::new(32, 0, 1, 1),
            Rect::new(30, 30, 4, 4),
            Rect::new(u32::MAX, u32::MAX, 1, 1),
        ] {
            assert!(
                matches!(
                    decode_roi(&bytes, roi, Parallelism::Sequential),
                    Err(CodecError::InvalidHeader(_))
                ),
                "{roi:?}"
            );
        }
    }

    #[test]
    fn decode_roi_any_crops_flat_containers_too() {
        let img = CorpusImage::Peppers.generate(40, 40);
        let cfg = CodecConfig::default();
        let roi = Rect::new(5, 9, 13, 17);
        let reference = img.view().crop(5, 9, 13, 17).to_image();
        for bytes in [
            compress_with_lanes(img.view(), &cfg, 1),
            compress_with_lanes(img.view(), &cfg, 4),
            compress_grid(img.view(), &cfg, geom(16, 16), 1, Parallelism::Sequential),
        ] {
            assert_eq!(
                decode_roi_any(&bytes, roi, Parallelism::Sequential).unwrap(),
                reference
            );
        }
    }

    /// A reader that counts the payload bytes actually read — the
    /// acceptance harness for "a crop decode touches only the covering
    /// tiles' bytes".
    struct CountingReader<R> {
        inner: R,
        read: u64,
    }

    impl<R: Read> Read for CountingReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.read += n as u64;
            Ok(n)
        }
    }

    impl<R: Seek> Seek for CountingReader<R> {
        fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
            self.inner.seek(pos)
        }
    }

    #[test]
    fn seekable_roi_reads_only_the_covering_tiles() {
        // 1024x512 at 256-pixel tiles: a 4x2 grid. A one-tile crop must
        // read the header + index + exactly that tile's bytes — no other
        // tile's payload.
        let img = Image::from_fn(1024, 512, |x, y| {
            ((x / 7) as u8).wrapping_add((y / 5) as u8).wrapping_mul(31)
        });
        let bytes = compress_grid(
            img.view(),
            &CodecConfig::default(),
            TileGeometry::default(),
            1,
            Parallelism::Auto,
        );
        let (_, index, payload) = parse_grid(&bytes).unwrap();
        assert_eq!((index.cols, index.rows), (4, 2));
        let header_and_index = bytes.len() - payload.len();

        // A crop strictly inside tile (1, 1).
        let roi = Rect::new(300, 300, 100, 100);
        let covered = &index.entries[index.cols + 1];
        let mut reader = CountingReader {
            inner: Cursor::new(&bytes),
            read: 0,
        };
        let crop = decode_roi_from(&mut reader, roi, Parallelism::Sequential).unwrap();
        assert_eq!(
            crop,
            img.view().crop(300, 300, 100, 100).to_image(),
            "crop pixels must match the source"
        );
        assert_eq!(
            reader.read,
            (header_and_index as u64) + u64::from(covered.len),
            "crop decode must read exactly the header, index, and the one covering tile"
        );
        assert!(
            reader.read < bytes.len() as u64 / 4,
            "one tile of eight plus the index must be far below the container size"
        );
    }

    #[test]
    fn tile_geometry_accessors() {
        let g = TileGeometry::default();
        assert_eq!(g.tile_size(), (DEFAULT_TILE_SIZE, DEFAULT_TILE_SIZE));
        assert_eq!(g.grid(1, 1), (1, 1));
        assert_eq!(g.grid(257, 256), (2, 1));
        let g = TileGeometry::new(10, 10);
        assert_eq!(g.tile_rect(1, 1, 25, 15), (10, 10, 10, 5));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_tile_geometry_panics() {
        let _ = TileGeometry::new(0, 16);
    }
}
