//! The single per-sample datapath: one table-driven state machine behind
//! every coding path in the workspace.
//!
//! The paper's architecture (Fig. 3) is literally **one pipeline**,
//! executed once per pixel by fixed hardware. This module is that pipeline
//! in software — [`PixelEngine`] owns the complete per-sample datapath,
//! and every public entry point ([`encode_raw`](crate::encode_raw), the
//! hardware model in [`hwpipe`](crate::hwpipe), the bounded-memory
//! [`stream`](crate::stream) codec, the reusable
//! [`session`](crate::session)s, and the [`tiles`](crate::tiles) band
//! workers) drives this one implementation. There is deliberately no
//! second copy of the model anywhere.
//!
//! # Stage map (software ↔ the paper's Fig. 3)
//!
//! | Fig. 3 stage | here |
//! |---|---|
//! | Line 2 (a) — context fetch from the 3 line buffers | the caller's [`Neighborhood`] (row slices or [`LineBuffers`](crate::hwpipe::LineBuffers)) |
//! | Line 2 (b) — local gradients `dh`, `dv` | [`Gradients::compute`] |
//! | Line 2 (c) — primary prediction `X̂` + coding context `QE` | [`gap_predict`] + the [`quantize_energy`] ROM |
//! | Line 2 (d) — texture pattern → compound context | [`texture_pattern`] |
//! | Line 2 (e) — error feedback `X̃ = X̂ + ē` | the cached feedback bank of [`ContextStore`] |
//! | Line 1 (a) — prediction error `e = X − X̃` | [`PixelEngine::encode_pixel`] |
//! | Line 1 (c) — remap (wrap + zig-zag fold) | the per-depth fold ROM ([`FoldLut`]) |
//! | Line 1 (c) — estimator + binary arithmetic coder | [`SampleCoder`] over the slice-batched tree descent |
//! | Line 1 (b)/(d) — sum/count update, `e_W` write-back | [`PixelEngine`]'s absorb stage |
//!
//! # Why tables
//!
//! Hardware coders get their speed from flat lookups and banked memories
//! rather than branches. The engine mirrors that:
//!
//! * the 7-compare energy quantizer is a 256-entry ROM
//!   ([`quantize_energy`]);
//! * wrap-mod-2ⁿ **and** zig-zag fold collapse into one read of a
//!   per-depth [`FoldLut`] (2·2ⁿ−1 entries — 0.5 KB at 8 bits, rebuilt
//!   only when the sample depth changes);
//! * the context store is structure-of-arrays — separate sum, count, and
//!   cached-feedback banks, mirroring the BRAM banks accounted in
//!   `cbic_hw::memory` — so the hot path reads one `i16` instead of
//!   running a division;
//! * each coded symbol walks its estimator tree **once**
//!   ([`DecisionPath`](cbic_arith::DecisionPath) batches the decisions),
//!   not three times.
//!
//! The inner loops are monomorphized over their
//! [`BitSink`](cbic_bitio::BitSink)/[`BitSource`](cbic_bitio::BitSource),
//! so the buffered and streaming transports
//! compile to separate, branch-free specializations. Every byte of output
//! is identical to the pre-engine implementation: the 16 golden fixtures
//! and the cross-path differential proptests (`tests/engine.rs`) pin this.

use crate::bigctx::{WideConfig, WideNeighborhood, BANKS_LOG2_RANGE};
use crate::codec::{CodecConfig, SampleCoder, CODING_CONTEXTS};
use crate::context::{error_energy, quantize_energy, texture_pattern, ContextStore};
use crate::neighborhood::Neighborhood;
use crate::predictor::{gap_predict, threshold_shift, Gradients};
use crate::remap::{fold, half_for_depth, unfold, wrap_error};
use cbic_arith::{CoderStats, DecisionDecoder, DecisionEncoder, EstimatorConfig};
use cbic_image::{ImageView, ImageViewMut};

/// The wrap-and-fold stage as a ROM: raw prediction error
/// `e = X − X̃ ∈ [−max_val, max_val]` → folded symbol, one lookup.
///
/// Combines [`wrap_error`] (mod 2ⁿ into the centered interval) and
/// [`fold`] (zig-zag onto `0..2ⁿ`) — the paper's "remapped … to reduce
/// the alphabet size" — into a single indexed read, the way the hardware
/// realizes the stage as wiring plus a small ROM. The table depends only
/// on the sample depth: 511 entries at 8 bits, rebuilt in place when an
/// engine is re-armed for a different depth.
#[derive(Debug, Clone)]
pub struct FoldLut {
    table: Vec<u16>,
    max_val: i32,
}

impl FoldLut {
    /// Builds the ROM for an `n`-bit depth.
    ///
    /// # Panics
    ///
    /// Panics if the depth is outside `1..=16`.
    pub fn new(bit_depth: u8) -> Self {
        let half = half_for_depth(bit_depth);
        let max_val = 2 * half - 1;
        let table = (-max_val..=max_val)
            .map(|e| fold(wrap_error(e, half), half))
            .collect();
        Self { table, max_val }
    }

    /// Largest raw-error magnitude the table covers (`2ⁿ − 1`).
    pub fn max_val(&self) -> i32 {
        self.max_val
    }

    /// ROM footprint in bytes (for the memory accounting).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * 2
    }

    /// Folds a raw prediction error.
    ///
    /// # Panics
    ///
    /// Panics (by indexing) if `e` is outside `[-max_val, max_val]` — on
    /// the coding paths both `X` and `X̃` are within the sample range, so
    /// the difference always is.
    #[inline]
    pub fn fold(&self, e: i32) -> u16 {
        self.table[(e + self.max_val) as usize]
    }
}

/// Per-pixel model outputs shared by the encode and decode halves.
struct PixelModel {
    /// Coding-context index (selects the estimator tree bank).
    qe: usize,
    /// Compound-context index (selects the feedback cell).
    ctx: usize,
    /// Adjusted prediction `X̃` after error feedback, in `0..=max_val`.
    x_tilde: i32,
}

/// The complete per-sample datapath of the paper, as one table-driven
/// state machine.
///
/// A `PixelEngine` owns everything both codec sides keep in lock-step:
/// the SoA context banks, the per-depth fold ROM, the per-column
/// `|e_W|` row buffer, and the estimator banks. One engine instance is
/// one side of one stream; the encoder-side and decoder-side wrappers
/// ([`EncoderState`], [`DecoderState`]) expose only the matching half of
/// the API so the two directions cannot be mixed on one state.
///
/// Engines are built once and **reset in place** between images (the
/// session path); a reset engine codes byte-identically to a fresh one.
#[derive(Debug)]
pub struct PixelEngine {
    banks: ContextStore,
    fold: FoldLut,
    /// |wrapped error| per column: entry `x` holds the error of the most
    /// recently processed pixel in column `x` (this row if already done,
    /// otherwise the previous row) — the hardware keeps exactly this row
    /// buffer to provide `e_W`.
    abs_err: Vec<u16>,
    coder: SampleCoder,
    estimator: EstimatorConfig,
    texture_bits: u32,
    error_feedback: bool,
    bit_depth: u8,
    /// `2^(depth-1)`: the wrap modulus half and first-pixel mid-gray.
    half: i32,
    /// `2^depth − 1`: sample mask (reconstruction) and clamp ceiling.
    max_val: i32,
    /// Energy quantizer scale: `depth − 8` for deep samples, 0 otherwise.
    energy_shift: u32,
    /// `Some` switches the *feedback* context from the paper's compound
    /// index to the hash-banked wide contexts of [`crate::bigctx`]; the
    /// coding contexts and decision stream stay classic either way.
    wide: Option<WideConfig>,
}

impl PixelEngine {
    /// Builds an engine for a `width`-pixel stream of the given depth.
    /// `cfg.model` selects the feedback-context model: classic compound
    /// contexts, or the wire-format wide configuration for
    /// [`ModelMode::WideHash`](crate::ModelMode::WideHash).
    ///
    /// # Panics
    ///
    /// Panics if the depth is outside `1..=16` or the configuration is
    /// invalid (see [`CodecConfig`]).
    pub fn new(width: usize, bit_depth: u8, cfg: &CodecConfig) -> Self {
        Self::build(width, bit_depth, cfg, WideConfig::from_mode(cfg.model))
    }

    /// Builds an engine with an explicit wide configuration (any
    /// window/mixer/bank combination) regardless of `cfg.model` — the
    /// ablation harness's entry point.
    ///
    /// # Panics
    ///
    /// As [`PixelEngine::new`], plus if `wide.banks_log2` is outside
    /// [`BANKS_LOG2_RANGE`].
    pub fn with_wide(width: usize, bit_depth: u8, cfg: &CodecConfig, wide: WideConfig) -> Self {
        Self::build(width, bit_depth, cfg, Some(wide))
    }

    fn build(width: usize, bit_depth: u8, cfg: &CodecConfig, wide: Option<WideConfig>) -> Self {
        if let Some(w) = wide {
            assert!(
                BANKS_LOG2_RANGE.contains(&w.banks_log2),
                "banks_log2 {} outside {:?}",
                w.banks_log2,
                BANKS_LOG2_RANGE
            );
        }
        let half = half_for_depth(bit_depth);
        // The wide model still stores its feedback in the same SoA
        // ContextStore — only the bank count and the index change.
        let contexts = wide.map_or(cfg.compound_contexts(), WideConfig::banks);
        Self {
            banks: ContextStore::with_max_err(contexts, cfg.division, cfg.aging, half),
            fold: FoldLut::new(bit_depth),
            abs_err: vec![0; width],
            coder: SampleCoder::new(CODING_CONTEXTS, bit_depth, cfg.estimator),
            estimator: cfg.estimator,
            texture_bits: u32::from(cfg.texture_bits),
            error_feedback: cfg.error_feedback,
            bit_depth,
            half,
            max_val: 2 * half - 1,
            energy_shift: threshold_shift(bit_depth),
            wide,
        }
    }

    /// Restores the start-of-stream state in place for a `width`-pixel
    /// stream of the given depth, reusing the context banks and the
    /// division LUT; the fold ROM and estimator banks are rebuilt only
    /// when the depth actually changes. A reset engine behaves
    /// byte-identically to a freshly constructed one.
    pub fn reset(&mut self, width: usize, bit_depth: u8) {
        if self.bit_depth != bit_depth {
            self.bit_depth = bit_depth;
            self.half = half_for_depth(bit_depth);
            self.max_val = 2 * self.half - 1;
            self.energy_shift = threshold_shift(bit_depth);
            self.fold = FoldLut::new(bit_depth);
            self.banks.set_max_err(self.half);
        }
        if self.coder.bit_depth() != bit_depth {
            self.coder = SampleCoder::new(CODING_CONTEXTS, bit_depth, self.estimator);
        } else {
            self.coder.reset();
        }
        self.banks.reset();
        self.abs_err.clear();
        self.abs_err.resize(width, 0);
    }

    /// Sample bit depth the engine is armed for.
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// `2^(depth-1)`: the first-pixel mid-gray fallback.
    #[inline]
    pub fn half(&self) -> i32 {
        self.half
    }

    /// First-pixel mid-gray as a sample.
    #[inline]
    pub(crate) fn mid(&self) -> u16 {
        self.half as u16
    }

    /// Number of overflow-guard halvings since construction or reset.
    pub fn halvings(&self) -> u64 {
        self.banks.halvings()
    }

    /// The wide-model configuration, if the engine runs hash-banked
    /// contexts (`None` on the classic path).
    pub fn wide(&self) -> Option<WideConfig> {
        self.wide
    }

    /// Number of feedback-context banks the engine allocated (compound
    /// contexts on the classic path, `2^banks_log2` on the wide path).
    pub fn context_banks(&self) -> usize {
        self.banks.contexts()
    }

    /// Host bytes actually allocated by the SoA context store — the
    /// quantity `cbic_hw::memory::ContextBankLayout::host_soa` accounts.
    pub fn context_bytes(&self) -> usize {
        self.banks.allocated_bytes()
    }

    /// Accumulated estimator statistics since construction or reset.
    pub fn coder_stats(&self) -> CoderStats {
        self.coder.stats()
    }

    /// Line 2 of the pipeline: gradients, primary prediction, compound
    /// context formation, and error feedback for column `x`, given the
    /// already-fetched causal neighbourhood.
    #[inline]
    fn model(&self, nb: &Neighborhood, x: usize) -> PixelModel {
        let g = Gradients::compute(nb);
        let x_hat = gap_predict(nb, g, self.bit_depth);
        // Column 0 reads its own (previous-row) slot, as the hardware
        // register file does.
        let e_w = i32::from(self.abs_err[x.saturating_sub(1)]);
        // The CALIC energy thresholds are 8-bit-scaled; deep samples bring
        // the energy back to that scale with one shift (no-op at 8 bits).
        let qe = usize::from(quantize_energy(error_energy(g, e_w) >> self.energy_shift));
        let t = texture_pattern(nb, x_hat, self.texture_bits);
        let ctx = (qe << self.texture_bits) | usize::from(t);
        let e_bar = if self.error_feedback {
            self.banks.mean(ctx)
        } else {
            0
        };
        let x_tilde = (x_hat + e_bar).clamp(0, self.max_val);
        PixelModel { qe, ctx, x_tilde }
    }

    /// Line 1 write-back: folds the coded pixel's wrapped error into the
    /// context banks and the `e_W` row buffer.
    #[inline]
    fn absorb(&mut self, x: usize, ctx: usize, wrapped: i32) {
        if self.error_feedback {
            self.banks.update(ctx, wrapped);
        }
        // |wrapped| ≤ half ≤ 2^15 always fits the u16 slot.
        self.abs_err[x] = wrapped.unsigned_abs() as u16;
    }

    /// Runs the full pipeline for one incoming pixel on the encoder side:
    /// model, error formation, fold-ROM remap, estimator + arithmetic
    /// coder, state write-back.
    #[inline]
    pub fn encode_pixel<E: DecisionEncoder>(
        &mut self,
        enc: &mut E,
        nb: &Neighborhood,
        x: usize,
        value: u16,
    ) {
        let m = self.model(nb, x);
        let folded = self.fold.fold(i32::from(value) - m.x_tilde);
        self.coder.encode(enc, m.qe, folded);
        self.absorb(x, m.ctx, unfold(folded));
    }

    /// The decoder-side dual of [`Self::encode_pixel`]: model, estimator
    /// decode, branch-free unfold, masked reconstruction, write-back.
    #[inline]
    pub fn decode_pixel<D: DecisionDecoder>(
        &mut self,
        dec: &mut D,
        nb: &Neighborhood,
        x: usize,
    ) -> u16 {
        let m = self.model(nb, x);
        let wrapped = unfold(self.coder.decode(dec, m.qe));
        // X = (X̃ + w) mod 2ⁿ: the modulus is a power of two, so the
        // two's-complement mask is the exact euclidean remainder.
        let value = ((m.x_tilde + wrapped) & self.max_val) as u16;
        self.absorb(x, m.ctx, wrapped);
        value
    }

    /// Line 2 of the pipeline under the wide model: classic gradients,
    /// primary prediction, and `QE` coding context (so the decision stream
    /// is unchanged), but the *feedback* context keeps `QE` as its top
    /// bits and refines within the energy class by hashing the enlarged
    /// neighbourhood's feature key — the classic `(QE, texture)` compound
    /// context with the 6-bit texture pattern generalized to a hashed
    /// wide-window feature.
    #[inline]
    fn model_wide(
        &self,
        wc: WideConfig,
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
    ) -> PixelModel {
        let mid = self.mid();
        let nb = Neighborhood::from_rows(cur, n1, n2, x, mid);
        let g = Gradients::compute(&nb);
        let x_hat = gap_predict(&nb, g, self.bit_depth);
        let e_w = i32::from(self.abs_err[x.saturating_sub(1)]);
        let qe = usize::from(quantize_energy(error_energy(g, e_w) >> self.energy_shift));
        let t = texture_pattern(&nb, x_hat, wc.texture_log2(self.texture_bits));
        let wn = WideNeighborhood::from_rows(cur, n1, n2, x, mid, wc.window);
        let ctx = wc.bank_of(
            wn.feature_key(x_hat, self.energy_shift),
            qe,
            t,
            self.texture_bits,
        );
        let e_bar = if self.error_feedback {
            self.banks.mean(ctx)
        } else {
            0
        };
        let x_tilde = (x_hat + e_bar).clamp(0, self.max_val);
        PixelModel { qe, ctx, x_tilde }
    }

    /// Rows-based single-pixel encode: the model-dispatching entry point
    /// the incremental paths ([`hwpipe`](crate::hwpipe)) drive. Classic
    /// engines gather the 7-pixel [`Neighborhood`] and take the exact
    /// [`Self::encode_pixel`] path (byte-identical); wide engines gather
    /// the enlarged window as well.
    #[inline]
    pub fn encode_pixel_rows<E: DecisionEncoder>(
        &mut self,
        enc: &mut E,
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
        value: u16,
    ) {
        match self.wide {
            None => {
                let nb = Neighborhood::from_rows(cur, n1, n2, x, self.mid());
                self.encode_pixel(enc, &nb, x, value);
            }
            Some(wc) => {
                let m = self.model_wide(wc, cur, n1, n2, x);
                let folded = self.fold.fold(i32::from(value) - m.x_tilde);
                self.coder.encode(enc, m.qe, folded);
                self.absorb(x, m.ctx, unfold(folded));
            }
        }
    }

    /// The decoder-side dual of [`Self::encode_pixel_rows`]. `cur` must
    /// hold the already-decoded pixels left of `x`.
    #[inline]
    pub fn decode_pixel_rows<D: DecisionDecoder>(
        &mut self,
        dec: &mut D,
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
    ) -> u16 {
        match self.wide {
            None => {
                let nb = Neighborhood::from_rows(cur, n1, n2, x, self.mid());
                self.decode_pixel(dec, &nb, x)
            }
            Some(wc) => {
                let m = self.model_wide(wc, cur, n1, n2, x);
                let wrapped = unfold(self.coder.decode(dec, m.qe));
                let value = ((m.x_tilde + wrapped) & self.max_val) as u16;
                self.absorb(x, m.ctx, wrapped);
                value
            }
        }
    }

    /// The encoder's row loop over a prepared view — the one pixel loop
    /// every whole-image encode path runs. Pixels are read through row
    /// slices (current row plus the two above), so strided views cost the
    /// same as contiguous ones; the loop is monomorphized per
    /// [`BitSink`](cbic_bitio::BitSink).
    ///
    /// Interior pixels of interior rows take the register-carried fast
    /// path: the seven neighbours live in locals that shift along the row
    /// (the hardware's pipeline registers), so each step performs three
    /// loads — `X`, `NE`, `NNE` — instead of a full
    /// [`Neighborhood::from_rows`] fetch with its boundary branches.
    /// Boundary pixels (first two rows, first two and last columns) go
    /// through `from_rows`, whose replication rules are the reference the
    /// fast path is differentially tested against.
    pub fn encode_view<E: DecisionEncoder>(&mut self, img: ImageView<'_>, enc: &mut E) {
        debug_assert_eq!(self.bit_depth, img.bit_depth());
        debug_assert_eq!(self.abs_err.len(), img.width());
        let (width, height) = img.dimensions();
        if self.wide.is_some() {
            // The wide window reaches further than the classic pipeline
            // registers carry, so every pixel takes the rows-based fetch.
            for y in 0..height {
                let cur = img.row(y);
                let n1 = (y >= 1).then(|| img.row(y - 1));
                let n2 = (y >= 2).then(|| img.row(y - 2));
                for x in 0..width {
                    self.encode_pixel_rows(enc, cur, n1, n2, x, cur[x]);
                }
            }
            return;
        }
        let mid = self.mid();
        for y in 0..height {
            let cur = img.row(y);
            if y < 2 || width < 4 {
                let n1 = (y >= 1).then(|| img.row(y - 1));
                let n2 = (y >= 2).then(|| img.row(y - 2));
                for x in 0..width {
                    let nb = Neighborhood::from_rows(cur, n1, n2, x, mid);
                    self.encode_pixel(enc, &nb, x, cur[x]);
                }
                continue;
            }
            let n1 = img.row(y - 1);
            let n2 = img.row(y - 2);
            for x in 0..2 {
                let nb = Neighborhood::from_rows(cur, Some(n1), Some(n2), x, mid);
                self.encode_pixel(enc, &nb, x, cur[x]);
            }
            self.encode_interior_chunked(enc, cur, n1, n2);
            let x = width - 1;
            let nb = Neighborhood::from_rows(cur, Some(n1), Some(n2), x, mid);
            self.encode_pixel(enc, &nb, x, cur[x]);
        }
    }

    /// Chunk width of the encoder's two-phase interior loop: small enough
    /// that the per-chunk `(qe, folded)` windows live in registers/L1,
    /// large enough to amortize the phase switch.
    const ENC_CHUNK: usize = 64;

    /// The interior pixels of one interior row (`x in 2..width-1`), coded
    /// in two phases per [`Self::ENC_CHUNK`]-pixel window.
    ///
    /// On the *encoder* side every model quantity — gradients, prediction,
    /// texture context, error feedback, and the folded error itself — is
    /// computable from the input pixels alone, without consulting the
    /// arithmetic coder. Phase A therefore runs the whole prediction/
    /// context datapath for a chunk, writing the per-pixel `(qe, folded)`
    /// pairs into two small stack windows (and retiring the context-bank
    /// write-back immediately, exactly as the fused loop did). Phase B
    /// replays the window through the estimator and coder lanes as one
    /// tight loop with no prediction state live across it.
    ///
    /// The coder sees the identical `(ctx, symbol)` sequence, and the
    /// model banks see the identical read/update interleaving, so the
    /// emitted bytes are bit-identical to the fused per-pixel loop (the
    /// golden fixtures pin this). Decoding cannot be split this way — the
    /// next pixel's neighbourhood needs the previous pixel decoded — so
    /// the decoder keeps the fused loop.
    fn encode_interior_chunked<E: DecisionEncoder>(
        &mut self,
        enc: &mut E,
        cur: &[u16],
        n1: &[u16],
        n2: &[u16],
    ) {
        let width = cur.len();
        // Pipeline registers, loaded for x = 2 and shifted per pixel.
        let mut ww = cur[0];
        let mut w = cur[1];
        let mut nw = n1[1];
        let mut nc = n1[2];
        let mut nn = n2[2];
        let mut qes = [0u8; Self::ENC_CHUNK];
        let mut folded = [0u16; Self::ENC_CHUNK];
        let mut x = 2;
        while x < width - 1 {
            let len = Self::ENC_CHUNK.min(width - 1 - x);
            // Phase A: prediction and context formation, no coder state.
            for i in 0..len {
                let xi = x + i;
                let ne = n1[xi + 1];
                let nne = n2[xi + 1];
                let nb = Neighborhood {
                    w,
                    ww,
                    n: nc,
                    nn,
                    ne,
                    nw,
                    nne,
                };
                let m = self.model(&nb, xi);
                let f = self.fold.fold(i32::from(cur[xi]) - m.x_tilde);
                qes[i] = m.qe as u8;
                folded[i] = f;
                self.absorb(xi, m.ctx, unfold(f));
                ww = w;
                w = cur[xi];
                nw = nc;
                nc = ne;
                nn = nne;
            }
            // Phase B: estimator descent + arithmetic coding, no
            // prediction state.
            for i in 0..len {
                self.coder.encode(enc, usize::from(qes[i]), folded[i]);
            }
            x += len;
        }
    }

    /// The decoder's row loop — the dual of [`Self::encode_view`],
    /// reconstructing rows in place into `out` (a band of a larger image,
    /// or a whole one) through the same slice discipline and the same
    /// register-carried interior fast path.
    pub fn decode_into<D: DecisionDecoder>(&mut self, dec: &mut D, out: &mut ImageViewMut<'_>) {
        debug_assert_eq!(self.bit_depth, out.bit_depth());
        debug_assert_eq!(self.abs_err.len(), out.width());
        let (width, height) = out.dimensions();
        if self.wide.is_some() {
            for y in 0..height {
                let (n2, n1, cur) = out.causal_rows_mut(y);
                for x in 0..width {
                    cur[x] = self.decode_pixel_rows(dec, cur, n1, n2, x);
                }
            }
            return;
        }
        let mid = self.mid();
        for y in 0..height {
            let (n2, n1, cur) = out.causal_rows_mut(y);
            if y < 2 || width < 4 {
                for x in 0..width {
                    let nb = Neighborhood::from_rows(cur, n1, n2, x, mid);
                    cur[x] = self.decode_pixel(dec, &nb, x);
                }
                continue;
            }
            let (n1, n2) = (
                n1.expect("row above exists"),
                n2.expect("two rows above exist"),
            );
            for x in 0..2 {
                let nb = Neighborhood::from_rows(cur, Some(n1), Some(n2), x, mid);
                cur[x] = self.decode_pixel(dec, &nb, x);
            }
            let mut ww = cur[0];
            let mut w = cur[1];
            let mut nw = n1[1];
            let mut n = n1[2];
            let mut nn = n2[2];
            for x in 2..width - 1 {
                let ne = n1[x + 1];
                let nne = n2[x + 1];
                let nb = Neighborhood {
                    w,
                    ww,
                    n,
                    nn,
                    ne,
                    nw,
                    nne,
                };
                let value = self.decode_pixel(dec, &nb, x);
                cur[x] = value;
                ww = w;
                w = value;
                nw = n;
                n = ne;
                nn = nne;
            }
            let x = width - 1;
            let nb = Neighborhood::from_rows(cur, Some(n1), Some(n2), x, mid);
            cur[x] = self.decode_pixel(dec, &nb, x);
        }
    }
}

/// The encoder-side engine state: a [`PixelEngine`] restricted to the
/// encode half of the API, owned by everything that produces a stream
/// ([`encode_raw`](crate::encode_raw), [`EncoderSession`](crate::session::EncoderSession),
/// [`HwEncoder`](crate::hwpipe::HwEncoder)).
#[derive(Debug)]
pub struct EncoderState {
    engine: PixelEngine,
}

impl EncoderState {
    /// Builds encoder-side state (see [`PixelEngine::new`]).
    ///
    /// # Panics
    ///
    /// As [`PixelEngine::new`].
    pub fn new(width: usize, bit_depth: u8, cfg: &CodecConfig) -> Self {
        Self {
            engine: PixelEngine::new(width, bit_depth, cfg),
        }
    }

    /// Builds encoder-side state with an explicit wide configuration (see
    /// [`PixelEngine::with_wide`]).
    ///
    /// # Panics
    ///
    /// As [`PixelEngine::with_wide`].
    pub fn with_wide(width: usize, bit_depth: u8, cfg: &CodecConfig, wide: WideConfig) -> Self {
        Self {
            engine: PixelEngine::with_wide(width, bit_depth, cfg, wide),
        }
    }

    /// Re-arms the state in place (see [`PixelEngine::reset`]).
    pub fn reset(&mut self, width: usize, bit_depth: u8) {
        self.engine.reset(width, bit_depth);
    }

    /// Sample bit depth the state is armed for.
    pub fn bit_depth(&self) -> u8 {
        self.engine.bit_depth()
    }

    /// `2^(depth-1)` (the wrap-modulus half).
    pub fn half(&self) -> i32 {
        self.engine.half()
    }

    /// The underlying engine (for memory accounting and ablation
    /// instrumentation).
    pub fn engine(&self) -> &PixelEngine {
        &self.engine
    }

    /// Overflow-guard halvings since construction or reset.
    pub fn halvings(&self) -> u64 {
        self.engine.halvings()
    }

    /// Estimator statistics since construction or reset.
    pub fn coder_stats(&self) -> CoderStats {
        self.engine.coder_stats()
    }

    /// Encodes one pixel (see [`PixelEngine::encode_pixel`]).
    #[inline]
    pub fn encode_pixel<E: DecisionEncoder>(
        &mut self,
        enc: &mut E,
        nb: &Neighborhood,
        x: usize,
        value: u16,
    ) {
        self.engine.encode_pixel(enc, nb, x, value);
    }

    /// Encodes one pixel from row slices, dispatching the model (see
    /// [`PixelEngine::encode_pixel_rows`]).
    #[inline]
    pub fn encode_pixel_rows<E: DecisionEncoder>(
        &mut self,
        enc: &mut E,
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
        value: u16,
    ) {
        self.engine.encode_pixel_rows(enc, cur, n1, n2, x, value);
    }

    /// Encodes a whole view (see [`PixelEngine::encode_view`]).
    pub fn encode_view<E: DecisionEncoder>(&mut self, img: ImageView<'_>, enc: &mut E) {
        self.engine.encode_view(img, enc);
    }
}

/// The decoder-side engine state: a [`PixelEngine`] restricted to the
/// decode half of the API, owned by everything that consumes a stream
/// ([`decode_raw`](crate::decode_raw), [`DecoderSession`](crate::session::DecoderSession),
/// [`HwDecoder`](crate::hwpipe::HwDecoder)).
#[derive(Debug)]
pub struct DecoderState {
    engine: PixelEngine,
}

impl DecoderState {
    /// Builds decoder-side state (see [`PixelEngine::new`]).
    ///
    /// # Panics
    ///
    /// As [`PixelEngine::new`].
    pub fn new(width: usize, bit_depth: u8, cfg: &CodecConfig) -> Self {
        Self {
            engine: PixelEngine::new(width, bit_depth, cfg),
        }
    }

    /// Builds decoder-side state with an explicit wide configuration (see
    /// [`PixelEngine::with_wide`]).
    ///
    /// # Panics
    ///
    /// As [`PixelEngine::with_wide`].
    pub fn with_wide(width: usize, bit_depth: u8, cfg: &CodecConfig, wide: WideConfig) -> Self {
        Self {
            engine: PixelEngine::with_wide(width, bit_depth, cfg, wide),
        }
    }

    /// Re-arms the state in place (see [`PixelEngine::reset`]).
    pub fn reset(&mut self, width: usize, bit_depth: u8) {
        self.engine.reset(width, bit_depth);
    }

    /// Sample bit depth the state is armed for.
    pub fn bit_depth(&self) -> u8 {
        self.engine.bit_depth()
    }

    /// The underlying engine (for memory accounting and ablation
    /// instrumentation).
    pub fn engine(&self) -> &PixelEngine {
        &self.engine
    }

    /// Decodes one pixel (see [`PixelEngine::decode_pixel`]).
    #[inline]
    pub fn decode_pixel<D: DecisionDecoder>(
        &mut self,
        dec: &mut D,
        nb: &Neighborhood,
        x: usize,
    ) -> u16 {
        self.engine.decode_pixel(dec, nb, x)
    }

    /// Decodes one pixel from row slices, dispatching the model (see
    /// [`PixelEngine::decode_pixel_rows`]).
    #[inline]
    pub fn decode_pixel_rows<D: DecisionDecoder>(
        &mut self,
        dec: &mut D,
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
    ) -> u16 {
        self.engine.decode_pixel_rows(dec, cur, n1, n2, x)
    }

    /// Decodes a whole view in place (see [`PixelEngine::decode_into`]).
    pub fn decode_into<D: DecisionDecoder>(&mut self, dec: &mut D, out: &mut ImageViewMut<'_>) {
        self.engine.decode_into(dec, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::Image;

    #[test]
    fn fold_lut_matches_wrap_fold_composition() {
        for depth in [1u8, 2, 4, 8, 12, 16] {
            let half = half_for_depth(depth);
            let max_val = 2 * half - 1;
            let lut = FoldLut::new(depth);
            assert_eq!(lut.max_val(), max_val);
            assert_eq!(lut.table_bytes(), (2 * max_val as usize + 1) * 2);
            for e in -max_val..=max_val {
                let expected = fold(wrap_error(e, half), half);
                assert_eq!(lut.fold(e), expected, "depth {depth}, e {e}");
                // The wrapped error the engine absorbs is recovered by the
                // branch-free unfold.
                assert_eq!(unfold(lut.fold(e)), wrap_error(e, half));
            }
        }
    }

    #[test]
    fn reset_engine_codes_identically_to_fresh() {
        use cbic_arith::BinaryEncoder;
        use cbic_bitio::BitWriter;
        let cfg = CodecConfig::default();
        let images = [
            Image::from_fn(24, 16, |x, y| (x * 11 + y * 7) as u8),
            Image::from_fn16(9, 9, 12, |x, y| (x * 400 + y) as u16),
            Image::from_fn(1, 1, |_, _| 42),
        ];
        let mut reused = EncoderState::new(1, 8, &cfg);
        for img in &images {
            let mut fresh = EncoderState::new(img.width(), img.bit_depth(), &cfg);
            let mut enc_a = BinaryEncoder::new(BitWriter::new());
            fresh.encode_view(img.view(), &mut enc_a);

            reused.reset(img.width(), img.bit_depth());
            let mut enc_b = BinaryEncoder::new(BitWriter::new());
            reused.encode_view(img.view(), &mut enc_b);

            assert_eq!(
                enc_a.finish().into_bytes(),
                enc_b.finish().into_bytes(),
                "reset != fresh on {}x{}@{}",
                img.width(),
                img.height(),
                img.bit_depth()
            );
        }
    }

    #[test]
    fn engine_roundtrips_through_both_states() {
        use cbic_arith::{BinaryDecoder, BinaryEncoder};
        use cbic_bitio::{BitReader, BitWriter};
        let cfg = CodecConfig::default();
        for depth in [1u8, 8, 11, 16] {
            let max = (1u32 << depth) - 1;
            let img = Image::from_fn16(13, 9, depth, |x, y| {
                let mix = (x as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add((y as u32).wrapping_mul(40503));
                (mix % (max + 1)) as u16
            });
            let mut enc_state = EncoderState::new(img.width(), depth, &cfg);
            let mut enc = BinaryEncoder::new(BitWriter::new());
            enc_state.encode_view(img.view(), &mut enc);
            let bytes = enc.finish().into_bytes();

            let mut dec_state = DecoderState::new(img.width(), depth, &cfg);
            let mut out = Image::with_depth(img.width(), img.height(), depth);
            let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
            dec_state.decode_into(&mut dec, &mut out.view_mut());
            assert_eq!(out, img, "depth {depth}");
        }
    }
}
