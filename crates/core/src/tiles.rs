//! Tile-parallel coding — the paper's multi-core scaling path.
//!
//! Section V closes with: "The low complexity means that a multi-core
//! solution could be used to scale up the performance." This module
//! implements exactly that decomposition: the image is split into
//! horizontal bands, each coded by an *independent* instance of the codec
//! (its own contexts, trees, and arithmetic coder), so `N` hardware cores —
//! or `N` software threads — can run one band each with zero shared state.
//!
//! Bands are **zero-copy**: [`split_bands`] returns borrowed
//! [`ImageView`] row ranges of the source image (no pixel is copied before
//! coding starts), and the decode side writes every band straight into
//! disjoint [`ImageViewMut`] windows of one
//! preallocated image.
//!
//! Both [`compress_tiled`] and [`decompress_tiled`] take a [`Parallelism`]
//! knob selecting how many worker threads code the bands. Because every
//! band is a self-contained stream, the schedule cannot change the bits:
//! parallel output is byte-identical to the sequential reference, which the
//! property tests in this crate assert.
//!
//! The price is model cold-start per band (every band re-learns its
//! statistics), measured by the `tile_overhead` test below and by the
//! throughput benches; the pipeline model in `cbic-hw` quantifies the
//! speed-up side.
//!
//! # Examples
//!
//! ```
//! use cbic_core::tiles::{compress_tiled, decompress_tiled, Parallelism};
//! use cbic_core::CodecConfig;
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Boat.generate(64, 64);
//! let bytes = compress_tiled(img.view(), &CodecConfig::default(), 4, Parallelism::Threads(4));
//! assert_eq!(decompress_tiled(&bytes, Parallelism::Sequential)?, img);
//! # Ok::<(), cbic_core::CodecError>(())
//! ```

use crate::codec::{encode_raw, CodecConfig, EncodeStats};
use crate::container::{
    compress_with_lanes, decode_payload_into, parse_header, CodecError, ContainerHeader, HEADER_LEN,
};
use cbic_image::{CbicError, Codec, DecodeOptions, EncodeOptions, Image, ImageView, ImageViewMut};
use std::io::{Read, Write};

pub use cbic_image::Parallelism;

/// Runs `job` over every input on `par`-many scoped threads, consuming the
/// inputs and returning the outputs in input order regardless of the
/// schedule.
fn run_banded<I, O, F>(inputs: Vec<I>, par: Parallelism, job: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = par.workers(inputs.len());
    if workers <= 1 {
        return inputs.into_iter().map(job).collect();
    }
    let total = inputs.len();
    let chunk = total.div_ceil(workers);
    let mut buckets: Vec<Vec<(usize, I)>> = Vec::new();
    let mut it = inputs.into_iter().enumerate();
    loop {
        let bucket: Vec<(usize, I)> = it.by_ref().take(chunk).collect();
        if bucket.is_empty() {
            break;
        }
        buckets.push(bucket);
    }
    let mut outputs: Vec<Option<O>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let job = &job;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, job(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, out) in handle.join().expect("band worker panicked") {
                outputs[i] = Some(out);
            }
        }
    });
    outputs
        .into_iter()
        .map(|o| o.expect("every band computed"))
        .collect()
}

/// The near-equal band partition of `height` rows into `tiles` bands (the
/// first `height % tiles` bands get one extra row).
fn band_heights(height: usize, tiles: usize) -> Vec<usize> {
    let base = height / tiles;
    let extra = height % tiles;
    (0..tiles).map(|t| base + usize::from(t < extra)).collect()
}

/// Splits a view into `tiles` horizontal bands of near-equal height —
/// **zero-copy**: each band is a borrowed row range of `img`, so the
/// encode path never duplicates a pixel.
///
/// # Panics
///
/// Panics if `tiles` is zero or exceeds the view height.
pub fn split_bands<'a>(img: ImageView<'a>, tiles: usize) -> Vec<ImageView<'a>> {
    let height = img.height();
    assert!(
        tiles >= 1 && tiles <= height,
        "tile count {tiles} outside 1..={height}"
    );
    let mut bands = Vec::with_capacity(tiles);
    let mut y0 = 0usize;
    for h in band_heights(height, tiles) {
        bands.push(img.row_range(y0, h));
        y0 += h;
    }
    debug_assert_eq!(y0, height);
    bands
}

/// Encodes each band independently, returning per-band payloads and stats.
/// Bands can be distributed across cores; this reference implementation
/// runs them sequentially for determinism.
pub fn encode_bands(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    tiles: usize,
) -> Vec<(Vec<u8>, EncodeStats)> {
    split_bands(img, tiles)
        .into_iter()
        .map(|band| encode_raw(band, cfg))
        .collect()
}

/// Magic for the tiled container.
const TILE_MAGIC: &[u8; 4] = b"CBTI";

/// Bytes a band contributes to a container at minimum: its `u32` length
/// prefix plus a standard (version-1) container header.
const MIN_BAND_BYTES: usize = 4 + HEADER_LEN;

/// Compresses a view with `tiles` independent bands into one container:
/// `CBTI`, tile count (u32 LE), then per tile a length-prefixed standard
/// container (which carries the config, band dimensions, and bit depth).
/// Bands are **borrowed row-range views** encoded on `par` worker threads;
/// no pixel is copied on this path, and the output does not depend on
/// `par`.
///
/// # Panics
///
/// Panics if `tiles` is zero or exceeds the view height.
pub fn compress_tiled(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    tiles: usize,
    par: Parallelism,
) -> Vec<u8> {
    compress_tiled_with_lanes(img, cfg, tiles, par, 1)
}

/// [`compress_tiled`] with every band coded over `lanes` interleaved coder
/// lanes: each band embeds a standard container, so for `lanes ≥ 2` the
/// bands are version-3 containers (see
/// [`compress_with_lanes`]) while the `CBTI`
/// framing is unchanged. Decoded pixels are identical for every lane
/// count.
///
/// # Panics
///
/// As [`compress_tiled`]; additionally if `lanes` is zero or above
/// [`cbic_arith::MAX_LANES`].
pub fn compress_tiled_with_lanes(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    tiles: usize,
    par: Parallelism,
    lanes: usize,
) -> Vec<u8> {
    let bands = split_bands(img, tiles);
    let payloads: Vec<Vec<u8>> =
        run_banded(bands, par, |band| compress_with_lanes(band, cfg, lanes));
    let body: usize = payloads.iter().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(8 + body);
    out.extend_from_slice(TILE_MAGIC);
    out.extend_from_slice(&(tiles as u32).to_le_bytes());
    for payload in &payloads {
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// One parsed band: its header fields and coded body.
type Band<'a> = (ContainerHeader, &'a [u8]);

/// Checks that the band shapes could have come from [`split_bands`]:
/// equal widths and depths, heights differing by at most one, taller
/// bands first.
fn validate_band_shapes(bands: &[Band<'_>]) -> Result<(), CodecError> {
    let width = bands[0].0.width;
    let depth = bands[0].0.bit_depth;
    let mut prev_height = usize::MAX;
    let (mut min_h, mut max_h) = (usize::MAX, 0usize);
    for (hdr, _) in bands {
        if hdr.width != width {
            return Err(CodecError::InvalidHeader("inconsistent band widths".into()));
        }
        if hdr.bit_depth != depth {
            return Err(CodecError::InvalidHeader(
                "inconsistent band bit depths".into(),
            ));
        }
        if hdr.height > prev_height {
            return Err(CodecError::InvalidHeader(
                "band heights must be non-increasing".into(),
            ));
        }
        prev_height = hdr.height;
        min_h = min_h.min(hdr.height);
        max_h = max_h.max(hdr.height);
    }
    if max_h - min_h > 1 {
        return Err(CodecError::InvalidHeader(format!(
            "band heights {min_h}..{max_h} differ by more than one"
        )));
    }
    Ok(())
}

/// Decodes parsed bands straight into disjoint windows of one
/// preallocated image — the zero-copy reassembly both tiled decode paths
/// share. Shapes must already be validated.
fn decode_bands_into(bands: Vec<Band<'_>>, par: Parallelism) -> Result<Image, CodecError> {
    let width = bands[0].0.width;
    let depth = bands[0].0.bit_depth;
    let heights: Vec<usize> = bands.iter().map(|(h, _)| h.height).collect();
    let height: usize = heights.iter().sum();
    let mut out = Image::with_depth(width, height, depth);
    let jobs: Vec<(Band<'_>, ImageViewMut<'_>)> = bands
        .into_iter()
        .zip(out.view_mut().split_rows(&heights))
        .collect();
    let results = run_banded(jobs, par, |((hdr, body), mut window)| {
        decode_payload_into(&hdr, body, &mut window)
    });
    results.into_iter().collect::<Result<(), _>>()?;
    Ok(out)
}

/// Decompresses a tiled container, reassembling the bands. Each band is
/// decoded (on `par` worker threads) directly into its row range of the
/// one preallocated output image; the result does not depend on `par`.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed containers, tile counts the encoder
/// cannot produce, or band shapes inconsistent with [`split_bands`]'s
/// equal partition.
pub fn decompress_tiled(bytes: &[u8], par: Parallelism) -> Result<Image, CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..4] != TILE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let tiles = u32::from_le_bytes(bytes[4..8].try_into().expect("sized")) as usize;
    // The encoder writes one band per tile, each at least MIN_BAND_BYTES
    // long, so any larger count cannot have come from `compress_tiled` —
    // reject it before allocating anything proportional to it.
    if tiles == 0 || tiles > (bytes.len() - 8) / MIN_BAND_BYTES {
        return Err(CodecError::InvalidHeader(format!(
            "tile count {tiles} impossible for a {}-byte container",
            bytes.len()
        )));
    }
    let mut pos = 8usize;
    let mut bands: Vec<Band<'_>> = Vec::with_capacity(tiles);
    for _ in 0..tiles {
        let len_bytes = bytes.get(pos..pos + 4).ok_or(CodecError::Truncated)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("sized")) as usize;
        pos += 4;
        let payload = bytes.get(pos..pos + len).ok_or(CodecError::Truncated)?;
        pos += len;
        bands.push(parse_header(payload)?);
    }
    if pos != bytes.len() {
        return Err(CodecError::InvalidHeader(format!(
            "{} trailing bytes after {tiles} bands",
            bytes.len() - pos
        )));
    }
    validate_band_shapes(&bands)?;
    decode_bands_into(bands, par)
}

/// The tiled multi-core variant on the unified [`Codec`] surface, so the
/// registry can auto-detect and decode `CBTI` containers like any other.
///
/// Band count and worker threads come from the
/// [`EncodeOptions`]/[`DecodeOptions`] of each call
/// (`opts.tiles`, `opts.parallelism`); the struct holds the model
/// configuration and the default band geometry.
///
/// # Examples
///
/// ```
/// use cbic_core::tiles::Tiled;
/// use cbic_image::{Codec, DecodeOptions, EncodeOptions, Image, Parallelism};
///
/// let codec = Tiled::default();
/// let img = Image::from_fn(32, 32, |x, y| (x * 3 + y) as u8);
/// let opts = EncodeOptions::new()
///     .with_tiles(4)
///     .with_parallelism(Parallelism::Threads(4));
/// let bytes = codec.encode_vec(img.view(), &opts)?;
/// assert_eq!(codec.decode_vec(&bytes, &DecodeOptions::default())?, img);
/// assert_eq!(codec.name(), "tiled");
/// # Ok::<(), cbic_image::CbicError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Tiled {
    /// Configuration shared by every band's codec instance.
    pub cfg: CodecConfig,
    /// Default number of horizontal bands when the encode options do not
    /// override it (always clamped to the image height).
    pub tiles: usize,
}

impl Default for Tiled {
    fn default() -> Self {
        Self {
            cfg: CodecConfig::default(),
            tiles: 4,
        }
    }
}

impl Codec for Tiled {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*TILE_MAGIC)
    }

    /// Each band embeds a standard container, so the bands carry any
    /// model the flat format supports — classic or wide-hash.
    fn model_modes(&self) -> &'static [&'static str] {
        &["classic", "wide"]
    }

    /// Encodes `opts.tiles` (default: the struct's geometry) independent
    /// zero-copy band views on `opts.parallelism` workers, each band over
    /// `opts.lanes` coder lanes. The bytes do not depend on the schedule.
    fn encode(
        &self,
        img: ImageView<'_>,
        opts: &EncodeOptions,
        sink: &mut dyn Write,
    ) -> Result<cbic_image::EncodeStats, CbicError> {
        if !(1..=cbic_arith::MAX_LANES).contains(&opts.lanes) {
            return Err(CbicError::InvalidContainer(format!(
                "lane count {} outside 1..={}",
                opts.lanes,
                cbic_arith::MAX_LANES
            )));
        }
        // A non-classic request on the options overrides the codec's own
        // model (mirroring `Proposed::encode`); each band then embeds a
        // version-5 container carrying the model byte.
        let mut cfg = self.cfg;
        if !opts.model.is_classic() {
            cfg.model = opts.model;
        }
        cfg.model.validate().map_err(CbicError::InvalidContainer)?;
        let tiles = opts.tiles.unwrap_or(self.tiles).clamp(1, img.height());
        let bytes = compress_tiled_with_lanes(img, &cfg, tiles, opts.parallelism, opts.lanes);
        sink.write_all(&bytes).map_err(CbicError::from)?;
        Ok(cbic_image::EncodeStats::new(
            img.pixel_count() as u64,
            bytes.len() as u64,
            None,
        ))
    }

    /// Buffered decode on `opts.parallelism` workers (one band each,
    /// written straight into the preallocated output image).
    fn decode_vec(&self, bytes: &[u8], opts: &DecodeOptions) -> Result<Image, CbicError> {
        decompress_tiled(bytes, opts.parallelism).map_err(CbicError::from)
    }

    /// Chunked streaming decode: bands are length-prefixed, so each one is
    /// read and validated in turn. By default (and at
    /// [`Parallelism::Sequential`]/[`Parallelism::Auto`]) every band is
    /// also arithmetic-decoded as it arrives, keeping peak
    /// compressed-side buffering at one band — the streaming entry point
    /// favors the bounded-memory guarantee. An explicit
    /// [`Parallelism::Threads`] request instead collects the validated
    /// band payloads and decodes them concurrently (compressed-side
    /// buffering grows to the container, still far below the decoded
    /// image); the buffered [`Codec::decode_vec`] path parallelizes under
    /// `Auto` too, since its input is already fully resident.
    fn decode(&self, input: &mut dyn Read, opts: &DecodeOptions) -> Result<Image, CbicError> {
        let read_exact = |input: &mut dyn Read, buf: &mut [u8]| -> Result<(), CbicError> {
            input.read_exact(buf).map_err(CbicError::from)
        };

        let mut head = [0u8; 8];
        read_exact(input, &mut head)?;
        if &head[..4] != TILE_MAGIC {
            return Err(CbicError::bad_magic(&head));
        }
        let tiles = u32::from_le_bytes(head[4..8].try_into().expect("sized")) as usize;
        // Without the container length in hand, bound the tile count by the
        // same 2^28-pixel ceiling the band headers enforce: every band has
        // at least one row, so more bands than pixels is impossible.
        if tiles == 0 || tiles > 1 << 28 {
            return Err(CbicError::InvalidContainer(format!(
                "tile count {tiles} impossible"
            )));
        }
        // Only an explicit thread request trades the one-band memory bound
        // for concurrency; `Auto` must not silently buffer the container.
        let parallel = matches!(opts.parallelism, Parallelism::Threads(n) if n > 1) && tiles > 1;
        // Sequential path: bands decoded as they arrive, assembled at the
        // end with row-wise copies.
        let mut decoded: Vec<Image> = Vec::new();
        // Parallel path: validated `(header, payload)` frames awaiting
        // the banded decode below.
        let mut frames: Vec<(ContainerHeader, Vec<u8>)> = Vec::new();
        let mut payload = Vec::new();
        // Shape validation runs on each band header *before* its payload is
        // arithmetic-decoded, mirroring decompress_tiled's fail-fast order:
        // equal widths and depths, non-increasing heights, spread of at
        // most one.
        let mut first: Option<ContainerHeader> = None;
        let (mut min_h, mut max_h) = (usize::MAX, 0usize);
        for _ in 0..tiles {
            let mut len_bytes = [0u8; 4];
            read_exact(input, &mut len_bytes)?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len < HEADER_LEN {
                return Err(CbicError::Truncated);
            }
            payload.clear();
            // `take` bounds the allocation by what the stream actually
            // holds, so a forged length cannot trigger a huge reservation.
            input
                .take(len as u64)
                .read_to_end(&mut payload)
                .map_err(CbicError::from)?;
            if payload.len() != len {
                return Err(CbicError::Truncated);
            }
            let (hdr, body) = parse_header(&payload).map_err(CbicError::from)?;
            if let Some(first) = &first {
                if hdr.width != first.width {
                    return Err(CbicError::InvalidContainer(
                        "inconsistent band widths".into(),
                    ));
                }
                if hdr.bit_depth != first.bit_depth {
                    return Err(CbicError::InvalidContainer(
                        "inconsistent band bit depths".into(),
                    ));
                }
                if hdr.height > min_h {
                    return Err(CbicError::InvalidContainer(
                        "band heights must be non-increasing".into(),
                    ));
                }
            }
            first.get_or_insert(hdr);
            min_h = min_h.min(hdr.height);
            max_h = max_h.max(hdr.height);
            if max_h - min_h > 1 {
                return Err(CbicError::InvalidContainer(format!(
                    "band heights {min_h}..{max_h} differ by more than one"
                )));
            }
            if parallel {
                frames.push((hdr, body.to_vec()));
            } else {
                let mut band = Image::with_depth(hdr.width, hdr.height, hdr.bit_depth);
                decode_payload_into(&hdr, body, &mut band.view_mut()).map_err(CbicError::from)?;
                decoded.push(band);
            }
        }
        if input.read(&mut [0u8]).map_err(CbicError::from)? != 0 {
            return Err(CbicError::InvalidContainer(
                "trailing bytes after final band".into(),
            ));
        }

        if parallel {
            let bands: Vec<Band<'_>> = frames.iter().map(|(h, p)| (*h, p.as_slice())).collect();
            return decode_bands_into(bands, opts.parallelism).map_err(CbicError::from);
        }

        // Row-wise reassembly of the sequentially decoded bands.
        let width = decoded[0].width();
        let depth = decoded[0].bit_depth();
        let height: usize = decoded.iter().map(Image::height).sum();
        let mut out = Image::with_depth(width, height, depth);
        let mut y0 = 0usize;
        for band in &decoded {
            for y in 0..band.height() {
                out.row_mut(y0 + y).copy_from_slice(band.row(y));
            }
            y0 += band.height();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn split_covers_image_exactly_and_borrows() {
        let img = CorpusImage::Lena.generate(32, 50);
        for tiles in [1, 2, 3, 7, 50] {
            let bands = split_bands(img.view(), tiles);
            assert_eq!(bands.len(), tiles);
            let total: usize = bands.iter().map(ImageView::height).sum();
            assert_eq!(total, 50);
            // Heights differ by at most one.
            let hs: Vec<_> = bands.iter().map(ImageView::height).collect();
            assert!(hs.iter().max().unwrap() - hs.iter().min().unwrap() <= 1);
            // Zero-copy: each band's first row *is* the image's row.
            let mut y0 = 0;
            for band in &bands {
                assert_eq!(band.row(0), img.row(y0), "band at row {y0} must borrow");
                y0 += band.height();
            }
        }
    }

    #[test]
    fn tiled_roundtrip_various_counts() {
        let img = CorpusImage::Goldhill.generate(48, 48);
        for tiles in [1, 2, 3, 4, 6, 48] {
            let bytes = compress_tiled(
                img.view(),
                &CodecConfig::default(),
                tiles,
                Parallelism::Auto,
            );
            assert_eq!(
                decompress_tiled(&bytes, Parallelism::Auto).unwrap(),
                img,
                "{tiles} tiles"
            );
        }
    }

    #[test]
    fn sixteen_bit_tiled_roundtrip() {
        let img = Image::from_fn16(40, 36, 16, |x, y| (x * 1500 + y * 7) as u16);
        for tiles in [1, 3, 5] {
            let bytes = compress_tiled(
                img.view(),
                &CodecConfig::default(),
                tiles,
                Parallelism::Auto,
            );
            let back = decompress_tiled(&bytes, Parallelism::Threads(2)).unwrap();
            assert_eq!(back, img, "{tiles} tiles");
            assert_eq!(back.bit_depth(), 16);
        }
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let img = CorpusImage::Barb.generate(40, 53);
        let cfg = CodecConfig::default();
        for tiles in [1, 2, 4, 7] {
            let seq = compress_tiled(img.view(), &cfg, tiles, Parallelism::Sequential);
            for par in [
                Parallelism::Threads(2),
                Parallelism::Threads(4),
                Parallelism::Threads(16),
                Parallelism::Auto,
            ] {
                assert_eq!(
                    compress_tiled(img.view(), &cfg, tiles, par),
                    seq,
                    "{tiles} tiles, {par:?}"
                );
            }
            assert_eq!(
                decompress_tiled(&seq, Parallelism::Threads(3)).unwrap(),
                img
            );
        }
    }

    #[test]
    fn one_tile_equals_untiled_payload() {
        let img = CorpusImage::Zelda.generate(40, 40);
        let cfg = CodecConfig::default();
        let tiled = compress_tiled(img.view(), &cfg, 1, Parallelism::Sequential);
        let plain = crate::container::compress(img.view(), &cfg);
        // CBTI magic + count + length prefix, then the identical container.
        assert_eq!(&tiled[12..], &plain[..]);
    }

    #[test]
    fn tile_overhead_is_bounded() {
        // Cold-start per band costs bits; for 4 bands of a 128-line image
        // the overhead must stay modest (~10%), and shrink with image size
        // as the warm-up amortizes.
        let cfg = CodecConfig::default();
        let overhead = |size: usize| -> f64 {
            let img = CorpusImage::Barb.generate(size, size);
            let one = compress_tiled(img.view(), &cfg, 1, Parallelism::Auto).len();
            let four = compress_tiled(img.view(), &cfg, 4, Parallelism::Auto).len();
            assert!(four >= one, "tiling cannot help compression");
            (four - one) as f64 / one as f64
        };
        let small = overhead(128);
        assert!(small < 0.12, "tile overhead {:.1}%", small * 100.0);
        let large = overhead(256);
        assert!(
            large < small,
            "overhead must amortize: {large:.3} vs {small:.3}"
        );
    }

    #[test]
    fn rejects_corrupt_tiled_containers() {
        let img = CorpusImage::Boat.generate(24, 24);
        let bytes = compress_tiled(
            img.view(),
            &CodecConfig::default(),
            2,
            Parallelism::Sequential,
        );
        let dec = |b: &[u8]| decompress_tiled(b, Parallelism::Sequential);
        assert_eq!(dec(&bytes[..3]), Err(CodecError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(dec(&bad), Err(CodecError::BadMagic));
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 5);
        assert!(dec(&short).is_err());
    }

    #[test]
    fn rejects_impossible_tile_counts() {
        let img = CorpusImage::Boat.generate(24, 24);
        let mut bytes = compress_tiled(
            img.view(),
            &CodecConfig::default(),
            2,
            Parallelism::Sequential,
        );
        // A count understating the band data errors (extra bytes), one
        // slightly overstating it errors (truncated third band)...
        for count in [1u32, 3] {
            bytes[4..8].copy_from_slice(&count.to_le_bytes());
            assert!(
                decompress_tiled(&bytes, Parallelism::Sequential).is_err(),
                "count {count}"
            );
        }
        // ...and counts the encoder can never fit into this container
        // length are rejected up front, before any allocation sized by
        // them (the seed accepted anything below 2^16).
        for count in [100u32, 65_535, 70_000, u32::MAX] {
            bytes[4..8].copy_from_slice(&count.to_le_bytes());
            assert!(
                matches!(
                    decompress_tiled(&bytes, Parallelism::Sequential),
                    Err(CodecError::InvalidHeader(_))
                ),
                "count {count}"
            );
        }
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decompress_tiled(&bytes, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn rejects_band_shapes_split_bands_cannot_produce() {
        let cfg = CodecConfig::default();
        let frame = |bands: &[Image]| -> Vec<u8> {
            let mut out = Vec::new();
            out.extend_from_slice(TILE_MAGIC);
            out.extend_from_slice(&(bands.len() as u32).to_le_bytes());
            for band in bands {
                let payload = crate::container::compress(band.view(), &cfg);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(&payload);
            }
            out
        };
        let band = |w: usize, h: usize| Image::from_fn(w, h, |x, y| (x + y) as u8);

        // Heights 3 and 1 differ by two — an equal partition never does.
        let bad_heights = frame(&[band(16, 3), band(16, 1)]);
        assert!(matches!(
            decompress_tiled(&bad_heights, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // The short band must come last, as split_bands emits it.
        let bad_order = frame(&[band(16, 2), band(16, 3)]);
        assert!(matches!(
            decompress_tiled(&bad_order, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // Mismatched widths never come from one image.
        let bad_widths = frame(&[band(16, 2), band(8, 2)]);
        assert!(matches!(
            decompress_tiled(&bad_widths, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // Mismatched depths never come from one image either.
        let deep = Image::from_fn16(16, 2, 12, |x, y| (x * 100 + y) as u16);
        let bad_depths = frame(&[band(16, 2), deep]);
        assert!(matches!(
            decompress_tiled(&bad_depths, Parallelism::Sequential),
            Err(CodecError::InvalidHeader(_))
        ));
        // The legal shape still decodes.
        let good = frame(&[band(16, 3), band(16, 2)]);
        assert_eq!(
            decompress_tiled(&good, Parallelism::Sequential)
                .unwrap()
                .dimensions(),
            (16, 5)
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_tiles_panics() {
        let img = CorpusImage::Boat.generate(16, 16);
        let _ = compress_tiled(
            img.view(),
            &CodecConfig::default(),
            0,
            Parallelism::Sequential,
        );
    }
}
