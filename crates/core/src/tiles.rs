//! Tile-parallel coding — the paper's multi-core scaling path.
//!
//! Section V closes with: "The low complexity means that a multi-core
//! solution could be used to scale up the performance." This module
//! implements exactly that decomposition: the image is split into
//! horizontal bands, each coded by an *independent* instance of the codec
//! (its own contexts, trees, and arithmetic coder), so `N` hardware cores —
//! or `N` software threads — can run one band each with zero shared state.
//!
//! The price is model cold-start per band (every band re-learns its
//! statistics), measured by the `tile_overhead` test below and by the
//! throughput benches; the pipeline model in `cbic-hw` quantifies the
//! speed-up side.
//!
//! # Examples
//!
//! ```
//! use cbic_core::tiles::{compress_tiled, decompress_tiled};
//! use cbic_core::CodecConfig;
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Boat.generate(64, 64);
//! let bytes = compress_tiled(&img, &CodecConfig::default(), 4);
//! assert_eq!(decompress_tiled(&bytes)?, img);
//! # Ok::<(), cbic_core::CodecError>(())
//! ```

use crate::codec::{decode_raw, encode_raw, CodecConfig, EncodeStats};
use crate::container::{parse_header, CodecError};
use cbic_image::Image;

/// Splits `img` into `tiles` horizontal bands of near-equal height
/// (the first `height % tiles` bands get one extra row).
///
/// # Panics
///
/// Panics if `tiles` is zero or exceeds the image height.
pub fn split_bands(img: &Image, tiles: usize) -> Vec<Image> {
    let (width, height) = img.dimensions();
    assert!(
        tiles >= 1 && tiles <= height,
        "tile count {tiles} outside 1..={height}"
    );
    let base = height / tiles;
    let extra = height % tiles;
    let mut bands = Vec::with_capacity(tiles);
    let mut y0 = 0usize;
    for t in 0..tiles {
        let h = base + usize::from(t < extra);
        bands.push(Image::from_fn(width, h, |x, y| img.get(x, y0 + y)));
        y0 += h;
    }
    debug_assert_eq!(y0, height);
    bands
}

/// Encodes each band independently, returning per-band payloads and stats.
/// Bands can be distributed across cores; this reference implementation
/// runs them sequentially for determinism.
pub fn encode_bands(img: &Image, cfg: &CodecConfig, tiles: usize) -> Vec<(Vec<u8>, EncodeStats)> {
    split_bands(img, tiles)
        .iter()
        .map(|band| encode_raw(band, cfg))
        .collect()
}

/// Magic for the tiled container.
const TILE_MAGIC: &[u8; 4] = b"CBTI";

/// Compresses with `tiles` independent bands into one container:
/// `CBTI`, tile count (u32 LE), then per tile a length-prefixed standard
/// container (which carries the config and band dimensions).
///
/// # Panics
///
/// Panics if `tiles` is zero or exceeds the image height.
pub fn compress_tiled(img: &Image, cfg: &CodecConfig, tiles: usize) -> Vec<u8> {
    let bands = split_bands(img, tiles);
    let mut out = Vec::new();
    out.extend_from_slice(TILE_MAGIC);
    out.extend_from_slice(&(tiles as u32).to_le_bytes());
    for band in &bands {
        let payload = crate::container::compress(band, cfg);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompresses a tiled container, reassembling the bands.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed containers or inconsistent band
/// widths.
pub fn decompress_tiled(bytes: &[u8]) -> Result<Image, CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if &bytes[..4] != TILE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let tiles = u32::from_le_bytes(bytes[4..8].try_into().expect("sized")) as usize;
    if tiles == 0 || tiles > 1 << 16 {
        return Err(CodecError::InvalidHeader(format!("bad tile count {tiles}")));
    }
    let mut pos = 8usize;
    let mut bands: Vec<Image> = Vec::with_capacity(tiles);
    for _ in 0..tiles {
        let len_bytes = bytes.get(pos..pos + 4).ok_or(CodecError::Truncated)?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("sized")) as usize;
        pos += 4;
        let payload = bytes.get(pos..pos + len).ok_or(CodecError::Truncated)?;
        pos += len;
        // Each band is a full standard container; decode independently
        // (this is the step N cores would run concurrently).
        let (cfg, w, h, body) = parse_header(payload)?;
        if let Some(first) = bands.first() {
            if first.width() != w {
                return Err(CodecError::InvalidHeader(
                    "inconsistent band widths".into(),
                ));
            }
        }
        bands.push(decode_raw(body, w, h, &cfg));
    }
    let width = bands[0].width();
    let height: usize = bands.iter().map(Image::height).sum();
    let mut out = Image::new(width, height);
    let mut y0 = 0usize;
    for band in &bands {
        for y in 0..band.height() {
            for x in 0..width {
                out.set(x, y0 + y, band.get(x, y));
            }
        }
        y0 += band.height();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn split_covers_image_exactly() {
        let img = CorpusImage::Lena.generate(32, 50);
        for tiles in [1, 2, 3, 7, 50] {
            let bands = split_bands(&img, tiles);
            assert_eq!(bands.len(), tiles);
            let total: usize = bands.iter().map(Image::height).sum();
            assert_eq!(total, 50);
            // Heights differ by at most one.
            let hs: Vec<_> = bands.iter().map(Image::height).collect();
            assert!(hs.iter().max().unwrap() - hs.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn tiled_roundtrip_various_counts() {
        let img = CorpusImage::Goldhill.generate(48, 48);
        for tiles in [1, 2, 3, 4, 6, 48] {
            let bytes = compress_tiled(&img, &CodecConfig::default(), tiles);
            assert_eq!(decompress_tiled(&bytes).unwrap(), img, "{tiles} tiles");
        }
    }

    #[test]
    fn one_tile_equals_untiled_payload() {
        let img = CorpusImage::Zelda.generate(40, 40);
        let cfg = CodecConfig::default();
        let tiled = compress_tiled(&img, &cfg, 1);
        let plain = crate::container::compress(&img, &cfg);
        // CBTI magic + count + length prefix, then the identical container.
        assert_eq!(&tiled[12..], &plain[..]);
    }

    #[test]
    fn tile_overhead_is_bounded() {
        // Cold-start per band costs bits; for 4 bands of a 128-line image
        // the overhead must stay modest (~10%), and shrink with image size
        // as the warm-up amortizes.
        let cfg = CodecConfig::default();
        let overhead = |size: usize| -> f64 {
            let img = CorpusImage::Barb.generate(size, size);
            let one = compress_tiled(&img, &cfg, 1).len();
            let four = compress_tiled(&img, &cfg, 4).len();
            assert!(four >= one, "tiling cannot help compression");
            (four - one) as f64 / one as f64
        };
        let small = overhead(128);
        assert!(small < 0.12, "tile overhead {:.1}%", small * 100.0);
        let large = overhead(256);
        assert!(
            large < small,
            "overhead must amortize: {large:.3} vs {small:.3}"
        );
    }

    #[test]
    fn rejects_corrupt_tiled_containers() {
        let img = CorpusImage::Boat.generate(24, 24);
        let bytes = compress_tiled(&img, &CodecConfig::default(), 2);
        assert_eq!(decompress_tiled(&bytes[..3]), Err(CodecError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decompress_tiled(&bad), Err(CodecError::BadMagic));
        let mut short = bytes.clone();
        short.truncate(bytes.len() - 5);
        assert!(decompress_tiled(&short).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_tiles_panics() {
        let img = CorpusImage::Boat.generate(16, 16);
        let _ = compress_tiled(&img, &CodecConfig::default(), 0);
    }
}
