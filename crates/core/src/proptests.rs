//! Property-based tests for the codec: losslessness is the headline
//! invariant, under arbitrary images, arbitrary configurations, and
//! arbitrary sample depths.

use proptest::prelude::*;

use crate::codec::{decode_raw, encode_raw, CodecConfig, ModelMode};
use crate::container::{compress, decompress};
use crate::context::DivisionKind;
use cbic_arith::EstimatorConfig;
use cbic_image::Image;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

/// Arbitrary images at arbitrary 9–16-bit depths, samples masked to fit.
fn arb_deep_image() -> impl Strategy<Value = Image> {
    (1usize..16, 1usize..16, 9u8..=16).prop_flat_map(|(w, h, depth)| {
        proptest::collection::vec(any::<u16>(), w * h).prop_map(move |data| {
            let mask = if depth == 16 {
                u16::MAX
            } else {
                (1u16 << depth) - 1
            };
            let data = data.into_iter().map(|v| v & mask).collect();
            Image::from_samples(w, h, depth, data).expect("masked to depth")
        })
    })
}

fn arb_config() -> impl Strategy<Value = CodecConfig> {
    (
        10u8..=16,
        1u16..=64,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..=6,
        (any::<bool>(), 4u8..=12),
    )
        .prop_map(
            |(count_bits, increment, feedback, aging, exact, texture_bits, (wide, banks))| {
                CodecConfig {
                    estimator: EstimatorConfig {
                        count_bits,
                        increment,
                        ..EstimatorConfig::default()
                    },
                    error_feedback: feedback,
                    aging,
                    division: if exact {
                        DivisionKind::Exact
                    } else {
                        DivisionKind::Lut
                    },
                    texture_bits,
                    model: if wide {
                        ModelMode::WideHash { banks_log2: banks }
                    } else {
                        ModelMode::Classic
                    },
                }
            },
        )
}

proptest! {
    /// Lossless round-trip for arbitrary pixel content under the default
    /// configuration.
    #[test]
    fn roundtrip_arbitrary_images(img in arb_image()) {
        let cfg = CodecConfig::default();
        let (bytes, stats) = encode_raw(img.view(), &cfg);
        prop_assert_eq!(stats.pixels as usize, img.pixel_count());
        let back = decode_raw(&bytes, img.width(), img.height(), 8, &cfg);
        prop_assert_eq!(back, img);
    }

    /// Lossless round-trip for arbitrary deep (9–16-bit) content.
    #[test]
    fn roundtrip_arbitrary_deep_images(img in arb_deep_image()) {
        let cfg = CodecConfig::default();
        let (bytes, _) = encode_raw(img.view(), &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), &cfg);
        prop_assert_eq!(back, img);
    }

    /// Lossless round-trip under arbitrary configurations.
    #[test]
    fn roundtrip_arbitrary_configs(img in arb_image(), cfg in arb_config()) {
        let (bytes, _) = encode_raw(img.view(), &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), 8, &cfg);
        prop_assert_eq!(back, img);
    }

    /// The container round-trips and self-describes arbitrary configs,
    /// at 8-bit and at deep sample depths.
    #[test]
    fn container_roundtrip(img in arb_image(), cfg in arb_config()) {
        let bytes = compress(img.view(), &cfg);
        prop_assert_eq!(decompress(&bytes).expect("valid container"), img);
    }

    /// Deep containers carry their depth and round-trip losslessly.
    #[test]
    fn deep_container_roundtrip(img in arb_deep_image(), cfg in arb_config()) {
        let bytes = compress(img.view(), &cfg);
        let back = decompress(&bytes).expect("valid container");
        prop_assert_eq!(back.bit_depth(), img.bit_depth());
        prop_assert_eq!(back, img);
    }

    /// Corrupted headers parse to an error or to a syntactically valid
    /// header; they never panic. Decoding proceeds only for small claimed
    /// dimensions (callers validate dimensions from `parse_header` before
    /// committing to a decode of arbitrary size).
    #[test]
    fn corrupt_headers_do_not_panic(
        img in arb_image(),
        byte in 0usize..23,
        val in any::<u8>(),
    ) {
        let mut bytes = compress(img.view(), &CodecConfig::default());
        bytes[byte] = val;
        if let Ok((hdr, _)) = crate::container::parse_header(&bytes) {
            if hdr.width * hdr.height <= 1 << 16 {
                let _ = decompress(&bytes); // garbage pixels are fine
            }
        }
    }

    /// Compressed size is never catastrophically larger than the input
    /// (escape overhead bounds expansion at ~15%).
    #[test]
    fn bounded_expansion(img in arb_image()) {
        let (bytes, _) = encode_raw(img.view(), &CodecConfig::default());
        let budget = img.pixel_count() * 8 * 120 / 100 + 64 * 8;
        prop_assert!(bytes.len() * 8 <= budget,
            "{} pixels -> {} bits", img.pixel_count(), bytes.len() * 8);
    }

    /// Deep-sample expansion stays bounded too: the two-bank estimator
    /// costs at most ~20% over the raw depth plus flush slack.
    #[test]
    fn bounded_expansion_deep(img in arb_deep_image()) {
        let (bytes, _) = encode_raw(img.view(), &CodecConfig::default());
        let depth = usize::from(img.bit_depth());
        let budget = img.pixel_count() * (depth + 2) * 120 / 100 + 64 * 8;
        prop_assert!(bytes.len() * 8 <= budget,
            "{} pixels at {depth} bits -> {} bits", img.pixel_count(), bytes.len() * 8);
    }

    /// Encoding through a strided window is byte-identical to encoding its
    /// contiguous copy: the bits depend on pixels, never on the stride.
    #[test]
    fn strided_views_encode_identically(
        img in arb_image(),
        frac in 0u8..4,
    ) {
        let (w, h) = img.dimensions();
        // A window anchored somewhere inside the image.
        let x0 = (usize::from(frac) * w / 5).min(w - 1);
        let y0 = (usize::from(frac) * h / 5).min(h - 1);
        let window = img.view().crop(x0, y0, w - x0, h - y0);
        let cfg = CodecConfig::default();
        let (from_view, _) = encode_raw(window, &cfg);
        let (from_copy, _) = encode_raw(window.to_image().view(), &cfg);
        prop_assert_eq!(from_view, from_copy);
    }

    /// Golden-model equivalence: the hardware-constrained streaming
    /// encoder (3 rotating line buffers) is bit-identical to the
    /// algorithmic reference on arbitrary images and configurations.
    #[test]
    fn hwpipe_matches_reference(img in arb_image(), cfg in arb_config()) {
        let (reference, _) = encode_raw(img.view(), &cfg);
        let hw = crate::hwpipe::HwEncoder::encode_image(img.view(), &cfg);
        prop_assert_eq!(hw, reference);
    }

    /// The hardware model agrees with the reference at deep depths too.
    #[test]
    fn hwpipe_matches_reference_deep(img in arb_deep_image()) {
        let cfg = CodecConfig::default();
        let (reference, _) = encode_raw(img.view(), &cfg);
        let hw = crate::hwpipe::HwEncoder::encode_image(img.view(), &cfg);
        prop_assert_eq!(hw, reference);
    }

    /// Tiled containers round-trip at every legal tile count.
    #[test]
    fn tiles_roundtrip(img in arb_image(), tiles in 1usize..8) {
        use crate::tiles::{compress_tiled, decompress_tiled, Parallelism};
        let tiles = tiles.min(img.height());
        let bytes = compress_tiled(img.view(), &CodecConfig::default(), tiles, Parallelism::Auto);
        prop_assert_eq!(
            decompress_tiled(&bytes, Parallelism::Auto).expect("valid container"),
            img
        );
    }

    /// Thread-parallel banded coding is byte-identical to the sequential
    /// reference at the band counts the throughput benches exercise, and
    /// the parallel decoder agrees with the sequential one.
    #[test]
    fn tiles_parallel_equals_sequential(
        img in arb_image(),
        tiles in (0usize..4).prop_map(|i| [1usize, 2, 4, 7][i]),
        workers in 2usize..6,
    ) {
        use crate::tiles::{compress_tiled, decompress_tiled, Parallelism};
        let cfg = CodecConfig::default();
        let tiles = tiles.min(img.height());
        let seq = compress_tiled(img.view(), &cfg, tiles, Parallelism::Sequential);
        let par = compress_tiled(img.view(), &cfg, tiles, Parallelism::Threads(workers));
        prop_assert_eq!(&par, &seq, "encode must not depend on the schedule");
        let seq_img = decompress_tiled(&seq, Parallelism::Sequential).expect("valid");
        let par_img = decompress_tiled(&seq, Parallelism::Threads(workers)).expect("valid");
        prop_assert_eq!(&seq_img, &par_img);
        prop_assert_eq!(&seq_img, &img);
    }

    /// A single-band tiled container is deterministic with respect to the
    /// untiled decoder path: the outer `CBTI` framing is always rejected
    /// (wrong magic), while the inner band — a standard container — always
    /// decodes to the original image.
    #[test]
    fn single_band_tile_vs_untiled_decoder(img in arb_image()) {
        use crate::tiles::{compress_tiled, Parallelism};
        let bytes = compress_tiled(img.view(), &CodecConfig::default(), 1, Parallelism::Sequential);
        prop_assert_eq!(decompress(&bytes), Err(crate::CodecError::BadMagic));
        // CBTI magic (4) + tile count (4) + band length prefix (4).
        prop_assert_eq!(decompress(&bytes[12..]).expect("inner container"), img);
    }

    /// Lane-striped containers round-trip losslessly at every benched lane
    /// count under arbitrary configs, and every lane count reconstructs
    /// the *same* pixels — striping splits the carrier, never the model.
    #[test]
    fn lane_containers_roundtrip_and_agree(img in arb_image(), cfg in arb_config()) {
        use crate::container::compress_with_lanes;
        for lanes in [1usize, 2, 4, 8] {
            let bytes = compress_with_lanes(img.view(), &cfg, lanes);
            let back = decompress(&bytes).expect("valid container");
            prop_assert_eq!(&back, &img, "lanes={}", lanes);
        }
    }

    /// Deep (9–16-bit) images survive lane striping too, including the
    /// degenerate 1-wide / 1-tall shapes the generator produces.
    #[test]
    fn lane_containers_roundtrip_deep(img in arb_deep_image(), lanes in 2usize..=8) {
        use crate::container::compress_with_lanes;
        let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
        let back = decompress(&bytes).expect("valid container");
        prop_assert_eq!(back.bit_depth(), img.bit_depth());
        prop_assert_eq!(back, img);
    }

    /// Striped encoding through a strided window is byte-identical to
    /// encoding its contiguous copy: lane assignment depends on decision
    /// order, never on the memory layout of the source pixels.
    #[test]
    fn strided_lane_encodes_are_layout_independent(
        img in arb_image(),
        frac in 0u8..4,
        lanes in 2usize..=8,
    ) {
        use crate::container::compress_with_lanes;
        let (w, h) = img.dimensions();
        let x0 = (usize::from(frac) * w / 5).min(w - 1);
        let y0 = (usize::from(frac) * h / 5).min(h - 1);
        let window = img.view().crop(x0, y0, w - x0, h - y0);
        let cfg = CodecConfig::default();
        let from_view = compress_with_lanes(window, &cfg, lanes);
        let from_copy = compress_with_lanes(window.to_image().view(), &cfg, lanes);
        prop_assert_eq!(from_view, from_copy);
    }

    /// Every strict prefix of a lane container fails with a structured
    /// error — the lane table's byte accounting makes any truncation
    /// (mid-header, mid-table, or mid-substream) detectable — and never
    /// panics.
    #[test]
    fn truncated_lane_containers_error_cleanly(
        img in arb_image(),
        lanes in 2usize..=8,
        cut_frac in 0.0f64..1.0,
    ) {
        use crate::container::compress_with_lanes;
        let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(
            decompress(&bytes[..cut.min(bytes.len() - 1)]).is_err(),
            "a strict prefix must not decode"
        );
    }

    /// Arbitrary single-byte corruption anywhere in a lane container —
    /// header, lane table, or substream payload — yields either a
    /// structured error or garbage pixels, never a panic.
    #[test]
    fn corrupt_lane_containers_do_not_panic(
        img in arb_image(),
        lanes in 2usize..=8,
        pos_frac in 0.0f64..1.0,
        val in any::<u8>(),
    ) {
        use crate::container::compress_with_lanes;
        let mut bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] = val;
        if let Ok((hdr, _)) = crate::container::parse_header(&bytes) {
            if hdr.width * hdr.height <= 1 << 16 {
                let _ = decompress(&bytes); // any Err/garbage is fine
            }
        }
    }
}

proptest! {
    /// Random-access crop decode is exact: `decode_roi(rect)` over a
    /// grid container (v4 classic, v5 wide) equals the same crop of a
    /// full decode, for random rects (the generator's endpoints cover
    /// single-pixel and full-image rects, and free tile sizes make
    /// boundary-straddling the common case) across depths 1–16, lane
    /// counts {1, 4}, and both context-model modes.
    #[test]
    fn decode_roi_equals_crop_of_full_decode(
        img in arb_graded_depth_image(),
        lane_ix in 0usize..2,
        wide in any::<bool>(),
        (tw, th) in (1u32..=20, 1u32..=20),
        (fx, fy, fw, fh) in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        use crate::grid::{compress_grid, decode_roi, decompress_grid, TileGeometry};
        use cbic_image::{Parallelism, Rect};

        let lanes = [1usize, 4][lane_ix];
        let cfg = CodecConfig {
            model: if wide {
                ModelMode::WideHash {
                    banks_log2: crate::bigctx::DEFAULT_BANKS_LOG2,
                }
            } else {
                ModelMode::Classic
            },
            ..CodecConfig::default()
        };

        let (w, h) = img.dimensions();
        let x = (fx * (w - 1) as f64) as u32;
        let y = (fy * (h - 1) as f64) as u32;
        let rw = 1 + (fw * (w as u32 - x - 1) as f64) as u32;
        let rh = 1 + (fh * (h as u32 - y - 1) as f64) as u32;
        let roi = Rect::new(x, y, rw, rh);

        let bytes = compress_grid(
            img.view(),
            &cfg,
            TileGeometry::new(tw, th),
            lanes,
            Parallelism::Sequential,
        );
        let full = decompress_grid(&bytes, Parallelism::Sequential)
            .expect("fresh container decodes");
        prop_assert_eq!(&full, &img, "grid container must be lossless");
        let crop = decode_roi(&bytes, roi, Parallelism::Sequential)
            .expect("in-bounds ROI decodes");
        let reference = full
            .view()
            .crop(x as usize, y as usize, rw as usize, rh as usize)
            .to_image();
        prop_assert_eq!(crop, reference);
    }
}

/// Arbitrary images across the full 1–16-bit depth range, samples masked
/// to fit — the ROI property runs the whole depth ladder, not just 8-bit.
fn arb_graded_depth_image() -> impl Strategy<Value = Image> {
    (1usize..40, 1usize..40, 1u8..=16).prop_flat_map(|(w, h, depth)| {
        proptest::collection::vec(any::<u16>(), w * h).prop_map(move |data| {
            let mask = if depth == 16 {
                u16::MAX
            } else {
                (1u16 << depth) - 1
            };
            let data = data.into_iter().map(|v| v & mask).collect();
            Image::from_samples(w, h, depth, data).expect("masked to depth")
        })
    })
}
