//! Property-based tests for the codec: losslessness is the headline
//! invariant, under arbitrary images *and* arbitrary configurations.

use proptest::prelude::*;

use crate::codec::{decode_raw, encode_raw, CodecConfig};
use crate::container::{compress, decompress};
use crate::context::DivisionKind;
use cbic_arith::EstimatorConfig;
use cbic_image::Image;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

fn arb_config() -> impl Strategy<Value = CodecConfig> {
    (
        10u8..=16,
        1u16..=64,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u8..=6,
    )
        .prop_map(
            |(count_bits, increment, feedback, aging, exact, texture_bits)| CodecConfig {
                estimator: EstimatorConfig {
                    count_bits,
                    increment,
                    ..EstimatorConfig::default()
                },
                error_feedback: feedback,
                aging,
                division: if exact {
                    DivisionKind::Exact
                } else {
                    DivisionKind::Lut
                },
                texture_bits,
            },
        )
}

proptest! {
    /// Lossless round-trip for arbitrary pixel content under the default
    /// configuration.
    #[test]
    fn roundtrip_arbitrary_images(img in arb_image()) {
        let cfg = CodecConfig::default();
        let (bytes, stats) = encode_raw(&img, &cfg);
        prop_assert_eq!(stats.pixels as usize, img.pixel_count());
        let back = decode_raw(&bytes, img.width(), img.height(), &cfg);
        prop_assert_eq!(back, img);
    }

    /// Lossless round-trip under arbitrary configurations.
    #[test]
    fn roundtrip_arbitrary_configs(img in arb_image(), cfg in arb_config()) {
        let (bytes, _) = encode_raw(&img, &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), &cfg);
        prop_assert_eq!(back, img);
    }

    /// The container round-trips and self-describes arbitrary configs.
    #[test]
    fn container_roundtrip(img in arb_image(), cfg in arb_config()) {
        let bytes = compress(&img, &cfg);
        prop_assert_eq!(decompress(&bytes).expect("valid container"), img);
    }

    /// Corrupted headers parse to an error or to a syntactically valid
    /// header; they never panic. Decoding proceeds only for small claimed
    /// dimensions (callers validate dimensions from `parse_header` before
    /// committing to a decode of arbitrary size).
    #[test]
    fn corrupt_headers_do_not_panic(
        img in arb_image(),
        byte in 0usize..23,
        val in any::<u8>(),
    ) {
        let mut bytes = compress(&img, &CodecConfig::default());
        bytes[byte] = val;
        if let Ok((_, w, h, _)) = crate::container::parse_header(&bytes) {
            if w * h <= 1 << 16 {
                let _ = decompress(&bytes); // garbage pixels are fine
            }
        }
    }

    /// Compressed size is never catastrophically larger than the input
    /// (escape overhead bounds expansion at ~15%).
    #[test]
    fn bounded_expansion(img in arb_image()) {
        let (bytes, _) = encode_raw(&img, &CodecConfig::default());
        let budget = img.pixel_count() * 8 * 120 / 100 + 64 * 8;
        prop_assert!(bytes.len() * 8 <= budget,
            "{} pixels -> {} bits", img.pixel_count(), bytes.len() * 8);
    }

    /// Golden-model equivalence: the hardware-constrained streaming
    /// encoder (3 rotating line buffers) is bit-identical to the
    /// algorithmic reference on arbitrary images and configurations.
    #[test]
    fn hwpipe_matches_reference(img in arb_image(), cfg in arb_config()) {
        let (reference, _) = encode_raw(&img, &cfg);
        let hw = crate::hwpipe::HwEncoder::encode_image(&img, &cfg);
        prop_assert_eq!(hw, reference);
    }

    /// Tiled containers round-trip at every legal tile count.
    #[test]
    fn tiles_roundtrip(img in arb_image(), tiles in 1usize..8) {
        use crate::tiles::{compress_tiled, decompress_tiled, Parallelism};
        let tiles = tiles.min(img.height());
        let bytes = compress_tiled(&img, &CodecConfig::default(), tiles, Parallelism::Auto);
        prop_assert_eq!(
            decompress_tiled(&bytes, Parallelism::Auto).expect("valid container"),
            img
        );
    }

    /// Thread-parallel banded coding is byte-identical to the sequential
    /// reference at the band counts the throughput benches exercise, and
    /// the parallel decoder agrees with the sequential one.
    #[test]
    fn tiles_parallel_equals_sequential(
        img in arb_image(),
        tiles in (0usize..4).prop_map(|i| [1usize, 2, 4, 7][i]),
        workers in 2usize..6,
    ) {
        use crate::tiles::{compress_tiled, decompress_tiled, Parallelism};
        let cfg = CodecConfig::default();
        let tiles = tiles.min(img.height());
        let seq = compress_tiled(&img, &cfg, tiles, Parallelism::Sequential);
        let par = compress_tiled(&img, &cfg, tiles, Parallelism::Threads(workers));
        prop_assert_eq!(&par, &seq, "encode must not depend on the schedule");
        let seq_img = decompress_tiled(&seq, Parallelism::Sequential).expect("valid");
        let par_img = decompress_tiled(&seq, Parallelism::Threads(workers)).expect("valid");
        prop_assert_eq!(&seq_img, &par_img);
        prop_assert_eq!(&seq_img, &img);
    }

    /// A single-band tiled container is deterministic with respect to the
    /// untiled decoder path: the outer `CBTI` framing is always rejected
    /// (wrong magic), while the inner band — a standard container — always
    /// decodes to the original image.
    #[test]
    fn single_band_tile_vs_untiled_decoder(img in arb_image()) {
        use crate::tiles::{compress_tiled, Parallelism};
        let bytes = compress_tiled(&img, &CodecConfig::default(), 1, Parallelism::Sequential);
        prop_assert_eq!(decompress(&bytes), Err(crate::CodecError::BadMagic));
        // CBTI magic (4) + tile count (4) + band length prefix (4).
        prop_assert_eq!(decompress(&bytes[12..]).expect("inner container"), img);
    }
}
