//! The full encoder/decoder pipeline (Fig. 3 of the paper), generalized
//! over 8–16-bit sample depths.
//!
//! The 8-bit path is the paper's codec, bit for bit (pinned by the golden
//! fixtures). Deeper samples reuse the identical model — gradients,
//! GAP-lite prediction with depth-scaled thresholds, 512 compound
//! contexts, error feedback — and factor the wider folded-error alphabet
//! into a high part (the top `n − 8` bits, coded by its own bank of
//! per-`QE` trees) and a low byte (the paper's 8-bit estimator), see
//! [`SampleCoder`].

use crate::engine::{DecoderState, EncoderState};
use cbic_arith::{
    BinaryDecoder, BinaryEncoder, CoderStats, CountingEncoder, DecisionDecoder, DecisionEncoder,
    EstimatorConfig, LaneDecoder, LaneEncoder, SymbolCoder,
};
use cbic_bitio::{BitReader, BitWriter};
use cbic_image::{Image, ImageView, ImageViewMut};

/// Upper bound on the zero-padding bits a decoder may legally read past the
/// end of a well-formed payload: a 32-bit register preload plus final-byte
/// padding, with slack. Anything above this means the stream was truncated.
pub(crate) const MAX_CODE_PADDING_BITS: u64 = 64;

pub use crate::context::DivisionKind;
pub use cbic_image::ModelMode;

/// Number of coding contexts (`QE` levels) — fixed at 8 by the paper.
pub const CODING_CONTEXTS: usize = 8;

/// Configuration of the paper's codec.
///
/// The default value is the paper's operating point: 512 compound contexts
/// (6 texture bits × 8 `QE` levels), error feedback with aging and LUT
/// division, and a 14-bit probability estimator. The other settings exist
/// for the Fig. 4 sweep and the ablation experiments (A1–A3 in
/// `DESIGN.md`). The sample bit depth is *not* part of the configuration:
/// it travels on the [`ImageView`] and in the container header.
///
/// # Examples
///
/// ```
/// use cbic_core::CodecConfig;
///
/// let cfg = CodecConfig::default();
/// assert_eq!(cfg.compound_contexts(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Probability-estimator tuning (Fig. 4 sweeps `count_bits`).
    pub estimator: EstimatorConfig,
    /// Enable the per-context error feedback `X̃ = X̂ + ē` (ablation A3).
    pub error_feedback: bool,
    /// Enable the overflow-guard halving ("aging", ablation A1). When
    /// disabled the context statistics freeze once the count saturates.
    pub aging: bool,
    /// LUT or exact division for the feedback mean (ablation A2).
    pub division: DivisionKind,
    /// Texture-pattern width in bits, `0..=6`; compound contexts =
    /// `8 × 2^texture_bits` (the paper uses 6 → 512).
    pub texture_bits: u8,
    /// Context-modeling mode: the paper's classic 7-pixel window
    /// (default, byte-identical to every pre-v5 container) or the
    /// enlarged hash-banked contexts of [`crate::bigctx`]. Non-classic
    /// modes travel in a v5 container header.
    pub model: ModelMode,
}

impl Default for CodecConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            error_feedback: true,
            aging: true,
            division: DivisionKind::Lut,
            texture_bits: 6,
            model: ModelMode::Classic,
        }
    }
}

impl CodecConfig {
    /// Total number of compound contexts (`8 × 2^texture_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `texture_bits > 6`.
    pub fn compound_contexts(&self) -> usize {
        assert!(self.texture_bits <= 6, "texture_bits must be 0..=6");
        CODING_CONTEXTS << self.texture_bits
    }
}

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced (exact, pre-padding).
    pub payload_bits: u64,
    /// Symbols that escaped to the static tree.
    pub escapes: u64,
    /// Tree-wide estimator rescales.
    pub estimator_rescales: u64,
    /// Context-store overflow-guard halvings.
    pub context_halvings: u64,
    /// Binary decisions pushed through the arithmetic coder.
    pub decisions: u64,
    /// Decisions that were *coded* (non-deterministic): the subset that
    /// moved the coder's interval and cost code space. The remainder were
    /// deterministic prefixes retired at the model layer for free.
    pub coded_decisions: u64,
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel (the unit of Table 1).
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }

    /// Average binary decisions per pixel (drives the pipeline model).
    pub fn decisions_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.decisions as f64 / self.pixels as f64
        }
    }

    /// Average *coded* (non-deterministic) decisions per pixel — the
    /// decisions that actually reached the arithmetic coder after
    /// deterministic-prefix skipping.
    pub fn coded_decisions_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.coded_decisions as f64 / self.pixels as f64
        }
    }

    /// Fraction of decisions retired as deterministic at the model layer,
    /// in `0.0..=1.0`.
    pub fn deterministic_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            1.0 - self.coded_decisions as f64 / self.decisions as f64
        }
    }
}

/// Depth-adaptive coder over folded prediction errors.
///
/// For depths up to 8 bits this is exactly the paper's estimator: one
/// dynamic tree per `QE` coding context over the `2ⁿ`-symbol alphabet.
/// For deeper samples the folded error is factored into its **high bits**
/// (`n − 8` of them, coded by a second bank of per-`QE` trees — smooth
/// content keeps these pinned near zero, costing almost nothing) followed
/// by its **low byte** through the standard 8-bit estimator. Both banks
/// share the one arithmetic coder, so the stream stays a single bit
/// sequence and the 8-bit path is bit-identical to the original design.
///
/// # Examples
///
/// ```
/// use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig};
/// use cbic_bitio::{BitReader, BitWriter};
/// use cbic_core::codec::SampleCoder;
///
/// let cfg = EstimatorConfig::default();
/// let mut enc_coder = SampleCoder::new(8, 12, cfg);
/// let mut enc = BinaryEncoder::new(BitWriter::new());
/// enc_coder.encode(&mut enc, 3, 3000);
/// let bytes = enc.finish().into_bytes();
///
/// let mut dec_coder = SampleCoder::new(8, 12, cfg);
/// let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
/// assert_eq!(dec_coder.decode(&mut dec, 3), 3000);
/// ```
#[derive(Debug, Clone)]
pub struct SampleCoder {
    /// The low (or only) part: alphabet `2^min(depth, 8)`.
    lo: SymbolCoder,
    /// The high part for depths above 8: alphabet `2^(depth - 8)`.
    hi: Option<SymbolCoder>,
    bit_depth: u8,
}

impl SampleCoder {
    /// Creates a coder with `contexts` trees per bank for folded errors of
    /// the given sample depth.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero, the depth is outside `1..=16`, or the
    /// estimator configuration is invalid.
    pub fn new(contexts: usize, bit_depth: u8, cfg: EstimatorConfig) -> Self {
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} outside 1..=16"
        );
        let lo_depth = u32::from(bit_depth.min(8));
        Self {
            lo: SymbolCoder::with_depth(contexts, lo_depth, cfg),
            hi: (bit_depth > 8)
                .then(|| SymbolCoder::with_depth(contexts, u32::from(bit_depth) - 8, cfg)),
            bit_depth,
        }
    }

    /// The folded-error bit depth this coder was built for.
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Restores the start-of-stream state in place (see
    /// [`SymbolCoder::reset`]).
    pub fn reset(&mut self) {
        self.lo.reset();
        if let Some(hi) = &mut self.hi {
            hi.reset();
        }
    }

    /// Accumulated coding statistics across both banks.
    pub fn stats(&self) -> CoderStats {
        let mut s = self.lo.stats();
        if let Some(hi) = &self.hi {
            let h = hi.stats();
            s.symbols += h.symbols;
            s.escapes += h.escapes;
            s.rescales += h.rescales;
            s.decisions += h.decisions;
            s.coded_decisions += h.coded_decisions;
        }
        s
    }

    /// Encodes one folded error in coding context `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or `folded` has bits above the
    /// coder's depth.
    #[inline]
    pub fn encode<E: DecisionEncoder>(&mut self, enc: &mut E, ctx: usize, folded: u16) {
        if let Some(hi) = &mut self.hi {
            hi.encode(enc, ctx, (folded >> 8) as u8);
            self.lo.encode(enc, ctx, (folded & 0xFF) as u8);
        } else {
            debug_assert!(self.bit_depth == 8 || folded < 1 << self.bit_depth);
            self.lo.encode(enc, ctx, folded as u8);
        }
    }

    /// Decodes one folded error from coding context `ctx`.
    #[inline]
    pub fn decode<D: DecisionDecoder>(&mut self, dec: &mut D, ctx: usize) -> u16 {
        if let Some(hi) = &mut self.hi {
            let high = u16::from(hi.decode(dec, ctx));
            let low = u16::from(self.lo.decode(dec, ctx));
            (high << 8) | low
        } else {
            u16::from(self.lo.decode(dec, ctx))
        }
    }

    /// [`encode`](Self::encode) through the historical per-decision
    /// sequence (see [`SymbolCoder::encode_reference`]). Byte-identical to
    /// the batched fast path; compiled only for differential testing.
    #[cfg(feature = "reference-coder")]
    pub fn encode_reference<E: DecisionEncoder>(&mut self, enc: &mut E, ctx: usize, folded: u16) {
        if let Some(hi) = &mut self.hi {
            hi.encode_reference(enc, ctx, (folded >> 8) as u8);
            self.lo.encode_reference(enc, ctx, (folded & 0xFF) as u8);
        } else {
            debug_assert!(self.bit_depth == 8 || folded < 1 << self.bit_depth);
            self.lo.encode_reference(enc, ctx, folded as u8);
        }
    }

    /// [`decode`](Self::decode) through the historical decode-then-update
    /// sequence. Compiled only for differential testing.
    #[cfg(feature = "reference-coder")]
    pub fn decode_reference<D: DecisionDecoder>(&mut self, dec: &mut D, ctx: usize) -> u16 {
        if let Some(hi) = &mut self.hi {
            let high = u16::from(hi.decode_reference(dec, ctx));
            let low = u16::from(self.lo.decode_reference(dec, ctx));
            (high << 8) | low
        } else {
            u16::from(self.lo.decode_reference(dec, ctx))
        }
    }
}

/// Encodes the pixels of `img` into a raw arithmetic-coded payload (no
/// container header).
///
/// Returns the payload bytes and the encoding statistics. Use
/// [`compress`](crate::compress) for the self-describing container. The
/// view may be strided (a tile band, a crop); the bits depend only on the
/// pixels and the bit depth, never on the stride. The pixel loop is the
/// engine's ([`EncoderState::encode_view`]) — the same datapath every
/// other encode entry point drives.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`CodecConfig`]).
pub fn encode_raw(img: ImageView<'_>, cfg: &CodecConfig) -> (Vec<u8>, EncodeStats) {
    let mut state = EncoderState::new(img.width(), img.bit_depth(), cfg);
    let mut enc = BinaryEncoder::new(BitWriter::new());
    state.encode_view(img, &mut enc);

    let (width, height) = img.dimensions();
    let decisions = enc.decisions();
    let coded_decisions = enc.coded_decisions();
    let payload_bits = enc.bits_written();
    let coder_stats = state.coder_stats();
    let writer = enc.finish();
    let stats = EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: payload_bits.max(writer.bits_written()),
        escapes: coder_stats.escapes,
        estimator_rescales: coder_stats.rescales,
        context_halvings: state.halvings(),
        decisions,
        coded_decisions,
    };
    (writer.into_bytes(), stats)
}

/// Runs the complete *model* pipeline of [`encode_raw`] — prediction,
/// context formation, tree descents and updates, decision classification —
/// into a null encoder that counts decisions but codes nothing, and
/// returns the statistics (with `payload_bits` zero).
///
/// The decision stream this pass classifies is identical to a real
/// encode's, so its wall time is the model stage's share of
/// [`encode_raw`]; the throughput harness subtracts it from a full encode
/// to report model-vs-coder per-pixel timings.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`CodecConfig`]).
pub fn encode_model_only(img: ImageView<'_>, cfg: &CodecConfig) -> EncodeStats {
    let mut state = EncoderState::new(img.width(), img.bit_depth(), cfg);
    let mut enc = CountingEncoder::new();
    state.encode_view(img, &mut enc);
    let (width, height) = img.dimensions();
    let coder_stats = state.coder_stats();
    EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: 0,
        escapes: coder_stats.escapes,
        estimator_rescales: coder_stats.rescales,
        context_halvings: state.halvings(),
        decisions: enc.decisions(),
        coded_decisions: enc.coded_decisions(),
    }
}

/// [`encode_raw`] over `lanes` interleaved coder lanes, returning one raw
/// substream per lane (no container header, no length table).
///
/// The engine's decision stream is dealt round-robin across `lanes`
/// independent arithmetic-coder interval states (see
/// [`LaneEncoder`]); the adaptive model is shared and updated in strict
/// program order, so the *decisions* are identical for every lane count —
/// only their packing into substreams changes. `lanes == 1` produces the
/// exact [`encode_raw`] payload.
///
/// # Panics
///
/// Panics if the configuration is invalid or `lanes` is zero or above
/// [`cbic_arith::MAX_LANES`].
pub fn encode_raw_lanes(
    img: ImageView<'_>,
    cfg: &CodecConfig,
    lanes: usize,
) -> (Vec<Vec<u8>>, EncodeStats) {
    let mut state = EncoderState::new(img.width(), img.bit_depth(), cfg);
    let mut enc = LaneEncoder::new(lanes);
    state.encode_view(img, &mut enc);

    let (width, height) = img.dimensions();
    let decisions = enc.decisions();
    let coded_decisions = enc.coded_decisions();
    let coder_stats = state.coder_stats();
    // The flush tail of every lane counts toward the payload, exactly as
    // the single coder's post-`finish` count does in `encode_raw`.
    let (subs, payload_bits) = enc.finish_with_bits();
    let stats = EncodeStats {
        pixels: (width * height) as u64,
        payload_bits,
        escapes: coder_stats.escapes,
        estimator_rescales: coder_stats.rescales,
        context_halvings: state.halvings(),
        decisions,
        coded_decisions,
    };
    (subs, stats)
}

/// [`decode_raw_into`] over the per-lane substreams produced by
/// [`encode_raw_lanes`], returning the worst per-lane padding overrun (the
/// maximum number of zero bits any lane's decoder consumed past the end of
/// its substream — same truncation signal as the single-lane path).
///
/// # Panics
///
/// Panics if the configuration or depth is invalid, or `substreams` is
/// empty or longer than [`cbic_arith::MAX_LANES`].
pub(crate) fn decode_raw_lanes_into<B: AsRef<[u8]>>(
    substreams: &[B],
    out: &mut ImageViewMut<'_>,
    cfg: &CodecConfig,
) -> u64 {
    let mut state = DecoderState::new(out.width(), out.bit_depth(), cfg);
    let sources = substreams
        .iter()
        .map(|s| BitReader::new(s.as_ref()))
        .collect();
    let mut dec = LaneDecoder::new(sources);
    state.decode_into(&mut dec, out);
    dec.max_padding_bits()
}

/// Decodes a raw payload produced by [`encode_raw`] with the same
/// dimensions, bit depth, and configuration.
///
/// The configuration **must** match the encoder's; the container API
/// handles that automatically.
///
/// # Panics
///
/// Panics if the configuration or depth is invalid. A mismatched payload
/// produces garbage pixels but never unsafety.
pub fn decode_raw(
    bytes: &[u8],
    width: usize,
    height: usize,
    bit_depth: u8,
    cfg: &CodecConfig,
) -> Image {
    let mut img = Image::with_depth(width, height, bit_depth);
    decode_raw_into(bytes, &mut img.view_mut(), cfg);
    img
}

/// [`decode_raw`] writing straight into a caller-provided view (a band of
/// a preallocated image on the tiled path), returning the number of
/// zero-padding bits the arithmetic decoder consumed past the end of
/// `bytes`. A count above [`MAX_CODE_PADDING_BITS`] cannot come from a
/// complete payload, which is how [`decompress`](crate::decompress) turns
/// mid-stream EOF into an error instead of silent garbage.
pub(crate) fn decode_raw_into(bytes: &[u8], out: &mut ImageViewMut<'_>, cfg: &CodecConfig) -> u64 {
    let mut state = DecoderState::new(out.width(), out.bit_depth(), cfg);
    let mut dec = BinaryDecoder::new(BitReader::new(bytes));
    state.decode_into(&mut dec, out);
    dec.source().padding_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image, cfg: &CodecConfig) -> EncodeStats {
        let (bytes, stats) = encode_raw(img.view(), cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), cfg);
        assert_eq!(&back, img, "lossless roundtrip failed");
        stats
    }

    #[test]
    fn roundtrip_corpus_images() {
        let cfg = CodecConfig::default();
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img, &cfg);
            assert_eq!(stats.pixels, 48 * 48, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny_images() {
        let cfg = CodecConfig::default();
        for (w, h) in [(1, 1), (1, 8), (8, 1), (2, 3), (17, 5)] {
            let img = Image::from_fn(w, h, |x, y| (x * 31 + y * 17) as u8);
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn roundtrip_deep_depths() {
        let cfg = CodecConfig::default();
        for depth in [9u8, 10, 12, 14, 16] {
            let max = if depth == 16 {
                u16::MAX as u32
            } else {
                (1u32 << depth) - 1
            };
            let img = Image::from_fn16(24, 24, depth, |x, y| {
                ((x as u32 * 977 + y as u32 * 3301) % (max + 1)) as u16
            });
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn roundtrip_shallow_depths() {
        let cfg = CodecConfig::default();
        for depth in [1u8, 2, 4, 7] {
            let max = (1u32 << depth) - 1;
            let img = Image::from_fn16(16, 16, depth, |x, y| {
                ((x * 3 + y) as u32 % (max + 1)) as u16
            });
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn smooth_sixteen_bit_content_stays_cheap() {
        // A smooth 16-bit ramp: the high-bits bank must pin to zero and
        // the rate should stay far below the raw 16 bpp.
        let img = Image::from_fn16(96, 96, 16, |x, y| ((x + y) * 300) as u16);
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 4.0,
            "smooth 16-bit ramp cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn strided_band_views_encode_identically_to_copies() {
        let img = CorpusImage::Goldhill.generate(40, 40);
        let band = img.view().row_range(10, 16);
        let (from_view, _) = encode_raw(band, &CodecConfig::default());
        let (from_copy, _) = encode_raw(band.to_image().view(), &CodecConfig::default());
        assert_eq!(from_view, from_copy);
        let crop = img.view().crop(3, 5, 20, 18);
        assert!(!crop.is_contiguous());
        let (v, _) = encode_raw(crop, &CodecConfig::default());
        let (c, _) = encode_raw(crop.to_image().view(), &CodecConfig::default());
        assert_eq!(v, c, "stride must not leak into the bits");
    }

    #[test]
    fn constant_image_compresses_hard() {
        let img = Image::from_fn(128, 128, |_, _| 200);
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 0.2,
            "constant image cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn smooth_gradient_compresses_well() {
        let img = Image::from_fn(128, 128, |x, y| ((x + y) / 2) as u8);
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 1.0,
            "gradient cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn noise_does_not_expand_catastrophically() {
        // Incompressible input must stay below ~9.2 bpp (8 bpp + escape
        // decision overhead).
        let img = Image::from_fn(64, 64, |x, y| {
            (cbic_image::synth::lattice(1, x as i64, y as i64) * 256.0) as u8
        });
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 9.2,
            "noise cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn error_feedback_helps_on_textured_content() {
        // The paper's central claim: per-context error feedback cancels
        // prediction bias. On textured natural-like content (the barb
        // stand-in) the 512-context feedback wins clearly.
        let img = CorpusImage::Barb.generate(128, 128);
        let with = roundtrip(&img, &CodecConfig::default());
        let without = roundtrip(
            &img,
            &CodecConfig {
                error_feedback: false,
                ..CodecConfig::default()
            },
        );
        assert!(
            with.bits_per_pixel() < without.bits_per_pixel(),
            "feedback {} vs none {}",
            with.bits_per_pixel(),
            without.bits_per_pixel()
        );
    }

    #[test]
    fn division_kind_changes_little() {
        let img = CorpusImage::Goldhill.generate(96, 96);
        let lut = roundtrip(&img, &CodecConfig::default());
        let exact = roundtrip(
            &img,
            &CodecConfig {
                division: DivisionKind::Exact,
                ..CodecConfig::default()
            },
        );
        let diff = (lut.bits_per_pixel() - exact.bits_per_pixel()).abs();
        assert!(diff < 0.05, "LUT vs exact division differ by {diff} bpp");
    }

    #[test]
    fn texture_bits_sweep_roundtrips() {
        let img = CorpusImage::Peppers.generate(40, 40);
        for bits in 0..=6u8 {
            let cfg = CodecConfig {
                texture_bits: bits,
                ..CodecConfig::default()
            };
            assert_eq!(cfg.compound_contexts(), 8 << bits);
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn count_bits_sweep_roundtrips() {
        let img = CorpusImage::Barb.generate(40, 40);
        for bits in [10u8, 12, 14, 16] {
            let cfg = CodecConfig {
                estimator: EstimatorConfig {
                    count_bits: bits,
                    ..EstimatorConfig::default()
                },
                ..CodecConfig::default()
            };
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn decisions_are_nine_per_pixel() {
        let img = CorpusImage::Lena.generate(32, 32);
        let (_, stats) = encode_raw(img.view(), &CodecConfig::default());
        assert!((stats.decisions_per_pixel() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn deep_samples_cost_more_decisions_per_pixel() {
        // 12-bit: 1 + 4 high decisions + 1 + 8 low decisions = 14.
        let img = Image::from_fn16(16, 16, 12, |x, y| (x * 250 + y) as u16);
        let (_, stats) = encode_raw(img.view(), &CodecConfig::default());
        assert!((stats.decisions_per_pixel() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn stats_bits_match_payload() {
        let img = CorpusImage::Boat.generate(32, 32);
        let (bytes, stats) = encode_raw(img.view(), &CodecConfig::default());
        assert!(stats.payload_bits <= bytes.len() as u64 * 8);
        assert!(stats.payload_bits + 64 > bytes.len() as u64 * 8);
    }

    #[test]
    fn mismatched_config_decodes_garbage_not_panic() {
        let img = CorpusImage::Zelda.generate(24, 24);
        let (bytes, _) = encode_raw(img.view(), &CodecConfig::default());
        let wrong = CodecConfig {
            texture_bits: 2,
            ..CodecConfig::default()
        };
        let out = decode_raw(&bytes, 24, 24, 8, &wrong);
        assert_eq!(out.dimensions(), (24, 24));
    }

    #[test]
    fn aging_beats_frozen_statistics() {
        // The paper: rescaling "slightly improves the compression ratio by
        // aging the observed data". Measurable on textured corpus content.
        let img = CorpusImage::Barb.generate(128, 128);
        let aged = roundtrip(&img, &CodecConfig::default());
        let frozen = roundtrip(
            &img,
            &CodecConfig {
                aging: false,
                ..CodecConfig::default()
            },
        );
        assert!(
            aged.bits_per_pixel() < frozen.bits_per_pixel(),
            "aged {} vs frozen {}",
            aged.bits_per_pixel(),
            frozen.bits_per_pixel()
        );
    }

    #[test]
    fn sample_coder_roundtrips_every_depth() {
        use cbic_bitio::{BitReader, BitWriter};
        for depth in [1u8, 4, 8, 9, 12, 16] {
            let cfg = EstimatorConfig::default();
            let mask = if depth == 16 {
                0xFFFFu32
            } else {
                (1u32 << depth) - 1
            };
            let symbols: Vec<u16> = (0..600u32)
                .map(|i| (i.wrapping_mul(2654435761) & mask) as u16)
                .collect();
            let mut enc_coder = SampleCoder::new(4, depth, cfg);
            let mut enc = BinaryEncoder::new(BitWriter::new());
            for (i, &s) in symbols.iter().enumerate() {
                enc_coder.encode(&mut enc, i % 4, s);
            }
            let bytes = enc.finish().into_bytes();
            let mut dec_coder = SampleCoder::new(4, depth, cfg);
            let mut dec = BinaryDecoder::new(BitReader::new(&bytes));
            for (i, &s) in symbols.iter().enumerate() {
                assert_eq!(dec_coder.decode(&mut dec, i % 4), s, "depth {depth}");
            }
            assert_eq!(enc_coder.stats().symbols, dec_coder.stats().symbols);
        }
    }

    /// Forwards everything to the wrapped [`BinaryEncoder`] *except*
    /// `encode_batch`, so the trait's default per-decision replay runs —
    /// the reference the fused batch implementations are pinned against.
    struct PerDecision(BinaryEncoder);

    impl DecisionEncoder for PerDecision {
        fn encode(&mut self, bit: bool, c0: u32, total: u32) {
            self.0.encode(bit, c0, total);
        }
        fn decisions(&self) -> u64 {
            self.0.decisions()
        }
        fn coded_decisions(&self) -> u64 {
            self.0.coded_decisions()
        }
        fn note_deterministic(&mut self, n: u64) {
            self.0.note_deterministic(n);
        }
    }

    #[test]
    fn batched_engine_output_matches_per_decision_replay() {
        let wide = CodecConfig {
            model: ModelMode::WideHash { banks_log2: 8 },
            ..CodecConfig::default()
        };
        let deep = Image::from_fn16(40, 40, 12, |x, y| ((x * 557 + y * 131) % 4096) as u16);
        let mut cases: Vec<(Image, CodecConfig)> = vec![(deep, CodecConfig::default())];
        for (_, img) in cbic_image::corpus::generate(40) {
            cases.push((img.clone(), CodecConfig::default()));
            cases.push((img, wide));
        }
        for (img, cfg) in &cases {
            let (fast, fast_stats) = encode_raw(img.view(), cfg);

            let mut state = EncoderState::new(img.width(), img.bit_depth(), cfg);
            let mut replay = PerDecision(BinaryEncoder::new(BitWriter::new()));
            state.encode_view(img.view(), &mut replay);
            assert_eq!(replay.decisions(), fast_stats.decisions);
            assert_eq!(replay.coded_decisions(), fast_stats.coded_decisions);
            let bytes = replay.0.finish().into_bytes();
            assert_eq!(bytes, fast, "batched bytes diverge from replay");
        }
    }

    #[test]
    fn model_only_pass_classifies_the_same_decision_stream() {
        let img = CorpusImage::Lena.generate(48, 48);
        let cfg = CodecConfig::default();
        let (_, full) = encode_raw(img.view(), &cfg);
        let model = encode_model_only(img.view(), &cfg);
        assert_eq!(model.payload_bits, 0);
        assert_eq!(model.decisions, full.decisions);
        assert_eq!(model.coded_decisions, full.coded_decisions);
        assert_eq!(model.escapes, full.escapes);
        assert!(full.coded_decisions <= full.decisions);
        assert!(full.deterministic_fraction() >= 0.0);
        assert!(full.coded_decisions_per_pixel() <= full.decisions_per_pixel());
    }
}

#[cfg(all(test, feature = "reference-coder"))]
mod reference_tests {
    use super::*;
    use cbic_bitio::{BitReader, BitWriter};

    #[test]
    fn sample_coder_fast_path_matches_reference_across_depths() {
        // A narrow estimator rescales often, exercising the zero-count
        // (deterministic) branches the fast path skips.
        let cfg = EstimatorConfig {
            count_bits: 11,
            ..EstimatorConfig::default()
        };
        for depth in 8u8..=16 {
            let mask = if depth == 16 {
                0xFFFFu32
            } else {
                (1u32 << depth) - 1
            };
            let symbols: Vec<u16> = (0..1500u32)
                .map(|i| (i.wrapping_mul(2654435761).rotate_left(7) & mask) as u16)
                .collect();

            let mut fast_coder = SampleCoder::new(4, depth, cfg);
            let mut fast = BinaryEncoder::new(BitWriter::new());
            for (i, &s) in symbols.iter().enumerate() {
                fast_coder.encode(&mut fast, i % 4, s);
            }
            let fast_bytes = fast.finish().into_bytes();

            let mut ref_coder = SampleCoder::new(4, depth, cfg);
            let mut refc = BinaryEncoder::new(BitWriter::new());
            for (i, &s) in symbols.iter().enumerate() {
                ref_coder.encode_reference(&mut refc, i % 4, s);
            }
            let ref_bytes = refc.finish().into_bytes();
            assert_eq!(fast_bytes, ref_bytes, "depth {depth}");
            assert_eq!(fast_coder.stats(), ref_coder.stats(), "depth {depth}");

            let mut dec_fast = SampleCoder::new(4, depth, cfg);
            let mut df = BinaryDecoder::new(BitReader::new(&fast_bytes));
            let mut dec_ref = SampleCoder::new(4, depth, cfg);
            let mut dr = BinaryDecoder::new(BitReader::new(&fast_bytes));
            for (i, &s) in symbols.iter().enumerate() {
                assert_eq!(dec_fast.decode(&mut df, i % 4), s, "depth {depth}");
                assert_eq!(dec_ref.decode_reference(&mut dr, i % 4), s, "depth {depth}");
            }
            assert_eq!(dec_fast.stats(), dec_ref.stats(), "depth {depth}");
            assert_eq!(dec_fast.stats(), fast_coder.stats(), "depth {depth}");
        }
    }
}
