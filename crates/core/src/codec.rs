//! The full encoder/decoder pipeline (Fig. 3 of the paper).

use crate::context::{error_energy, quantize_energy, texture_pattern, ContextStore};
use crate::neighborhood::Neighborhood;
use crate::predictor::{gap_predict, Gradients};
use crate::remap::{fold, reconstruct, unfold, wrap_error};
use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig, SymbolCoder};
use cbic_bitio::{BitReader, BitWriter};
use cbic_image::Image;

/// Upper bound on the zero-padding bits a decoder may legally read past the
/// end of a well-formed payload: a 32-bit register preload plus final-byte
/// padding, with slack. Anything above this means the stream was truncated.
pub(crate) const MAX_CODE_PADDING_BITS: u64 = 64;

pub use crate::context::DivisionKind;

/// Number of coding contexts (`QE` levels) — fixed at 8 by the paper.
pub const CODING_CONTEXTS: usize = 8;

/// Configuration of the paper's codec.
///
/// The default value is the paper's operating point: 512 compound contexts
/// (6 texture bits × 8 `QE` levels), error feedback with aging and LUT
/// division, and a 14-bit probability estimator. The other settings exist
/// for the Fig. 4 sweep and the ablation experiments (A1–A3 in
/// `DESIGN.md`).
///
/// # Examples
///
/// ```
/// use cbic_core::CodecConfig;
///
/// let cfg = CodecConfig::default();
/// assert_eq!(cfg.compound_contexts(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Probability-estimator tuning (Fig. 4 sweeps `count_bits`).
    pub estimator: EstimatorConfig,
    /// Enable the per-context error feedback `X̃ = X̂ + ē` (ablation A3).
    pub error_feedback: bool,
    /// Enable the overflow-guard halving ("aging", ablation A1). When
    /// disabled the context statistics freeze once the count saturates.
    pub aging: bool,
    /// LUT or exact division for the feedback mean (ablation A2).
    pub division: DivisionKind,
    /// Texture-pattern width in bits, `0..=6`; compound contexts =
    /// `8 × 2^texture_bits` (the paper uses 6 → 512).
    pub texture_bits: u8,
}

impl Default for CodecConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            error_feedback: true,
            aging: true,
            division: DivisionKind::Lut,
            texture_bits: 6,
        }
    }
}

impl CodecConfig {
    /// Total number of compound contexts (`8 × 2^texture_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `texture_bits > 6`.
    pub fn compound_contexts(&self) -> usize {
        assert!(self.texture_bits <= 6, "texture_bits must be 0..=6");
        CODING_CONTEXTS << self.texture_bits
    }
}

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced (exact, pre-padding).
    pub payload_bits: u64,
    /// Symbols that escaped to the static tree.
    pub escapes: u64,
    /// Tree-wide estimator rescales.
    pub estimator_rescales: u64,
    /// Context-store overflow-guard halvings.
    pub context_halvings: u64,
    /// Binary decisions pushed through the arithmetic coder.
    pub decisions: u64,
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel (the unit of Table 1).
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }

    /// Average binary decisions per pixel (drives the pipeline model).
    pub fn decisions_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.decisions as f64 / self.pixels as f64
        }
    }
}

/// Per-pixel model outputs shared by encoder and decoder.
struct PixelModel {
    /// Coding-context index (selects the dynamic tree).
    qe: usize,
    /// Compound-context index (selects the feedback cell).
    ctx: usize,
    /// Adjusted prediction `X̃` after error feedback, in `0..=255`.
    x_tilde: i32,
}

/// The deterministic modeling state both sides keep in lock-step.
#[derive(Debug)]
pub(crate) struct Modeler {
    store: ContextStore,
    /// |wrapped error| per column: entry `x` holds the error of the most
    /// recently processed pixel in column `x` (this row if already done,
    /// otherwise the previous row) — the hardware keeps exactly this row
    /// buffer to provide `e_W`.
    abs_err: Vec<u8>,
    texture_bits: u32,
    error_feedback: bool,
}

impl Modeler {
    pub(crate) fn new(width: usize, cfg: &CodecConfig) -> Self {
        Self {
            store: ContextStore::new(cfg.compound_contexts(), cfg.division, cfg.aging),
            abs_err: vec![0; width],
            texture_bits: u32::from(cfg.texture_bits),
            error_feedback: cfg.error_feedback,
        }
    }

    /// Restores the start-of-image state in place for a `width`-pixel
    /// image, reusing the context cells and the division LUT. The modeler
    /// behaves byte-identically to a freshly constructed one.
    pub(crate) fn reset(&mut self, width: usize) {
        self.store.reset();
        self.abs_err.clear();
        self.abs_err.resize(width, 0);
    }

    /// Number of overflow-guard halvings since construction or reset.
    pub(crate) fn halvings(&self) -> u64 {
        self.store.halvings()
    }

    /// Runs prediction + context formation for pixel `(x, y)` against the
    /// causal content of `img`.
    fn model(&self, img: &Image, x: usize, y: usize) -> PixelModel {
        let nb = Neighborhood::fetch(img, x, y);
        let g = Gradients::compute(&nb);
        let x_hat = gap_predict(&nb, g);
        let e_w = i32::from(if x > 0 {
            self.abs_err[x - 1]
        } else {
            self.abs_err[0]
        });
        let qe = usize::from(quantize_energy(error_energy(g, e_w)));
        let t = texture_pattern(&nb, x_hat, self.texture_bits);
        let ctx = (qe << self.texture_bits) | usize::from(t);
        let e_bar = if self.error_feedback {
            self.store.mean(ctx)
        } else {
            0
        };
        let x_tilde = (x_hat + e_bar).clamp(0, 255);
        PixelModel { qe, ctx, x_tilde }
    }

    /// Folds the coded pixel's wrapped error back into the model state.
    fn absorb(&mut self, x: usize, ctx: usize, wrapped: i32) {
        if self.error_feedback {
            self.store.update(ctx, wrapped);
        }
        self.abs_err[x] = wrapped.unsigned_abs().min(255) as u8;
    }
}

/// Encodes `img` into a raw arithmetic-coded payload (no container header).
///
/// Returns the payload bytes and the encoding statistics. Use
/// [`compress`](crate::compress) for the self-describing container.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`CodecConfig`]).
pub fn encode_raw(img: &Image, cfg: &CodecConfig) -> (Vec<u8>, EncodeStats) {
    let mut modeler = Modeler::new(img.width(), cfg);
    let mut coder = SymbolCoder::new(CODING_CONTEXTS, cfg.estimator);
    let mut enc = BinaryEncoder::new(BitWriter::new());
    encode_loop(img, &mut modeler, &mut coder, &mut enc);

    let (width, height) = img.dimensions();
    let decisions = enc.decisions();
    let payload_bits = enc.bits_written();
    let coder_stats = coder.stats();
    let writer = enc.finish();
    let stats = EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: payload_bits.max(writer.bits_written()),
        escapes: coder_stats.escapes,
        estimator_rescales: coder_stats.rescales,
        context_halvings: modeler.halvings(),
        decisions,
    };
    (writer.into_bytes(), stats)
}

/// The encoder's pixel loop over prepared model state — shared by
/// [`encode_raw`] (fresh state, buffered sink) and the reusable
/// [`EncoderSession`](crate::session::EncoderSession) (reused state, any
/// [`BitSink`]). The modeler and coder must be freshly constructed or
/// reset; the produced bits are identical either way.
pub(crate) fn encode_loop<S: cbic_bitio::BitSink>(
    img: &Image,
    modeler: &mut Modeler,
    coder: &mut SymbolCoder,
    enc: &mut BinaryEncoder<S>,
) {
    let (width, height) = img.dimensions();
    for y in 0..height {
        for x in 0..width {
            let m = modeler.model(img, x, y);
            let e = i32::from(img.get(x, y)) - m.x_tilde;
            let wrapped = wrap_error(e);
            coder.encode(enc, m.qe, fold(wrapped));
            modeler.absorb(x, m.ctx, wrapped);
        }
    }
}

/// The decoder's pixel loop — the dual of [`encode_loop`], shared by
/// [`decode_raw`] and the reusable
/// [`DecoderSession`](crate::session::DecoderSession).
pub(crate) fn decode_loop<S: cbic_bitio::BitSource>(
    modeler: &mut Modeler,
    coder: &mut SymbolCoder,
    dec: &mut BinaryDecoder<S>,
    width: usize,
    height: usize,
) -> Image {
    let mut img = Image::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let m = modeler.model(&img, x, y);
            let folded = coder.decode(dec, m.qe);
            let wrapped = unfold(folded);
            img.set(x, y, reconstruct(m.x_tilde, wrapped));
            modeler.absorb(x, m.ctx, wrapped);
        }
    }
    img
}

/// Decodes a raw payload produced by [`encode_raw`] with the same
/// dimensions and configuration.
///
/// The configuration **must** match the encoder's; the container API
/// handles that automatically.
///
/// # Panics
///
/// Panics if the configuration is invalid. A mismatched payload produces
/// garbage pixels but never unsafety.
pub fn decode_raw(bytes: &[u8], width: usize, height: usize, cfg: &CodecConfig) -> Image {
    decode_raw_with_padding(bytes, width, height, cfg).0
}

/// [`decode_raw`] plus the number of zero-padding bits the arithmetic
/// decoder consumed past the end of `bytes`. A count above
/// [`MAX_CODE_PADDING_BITS`] cannot come from a complete payload, which is
/// how [`decompress`](crate::decompress) turns mid-stream EOF into an error
/// instead of silent garbage.
pub(crate) fn decode_raw_with_padding(
    bytes: &[u8],
    width: usize,
    height: usize,
    cfg: &CodecConfig,
) -> (Image, u64) {
    let mut modeler = Modeler::new(width, cfg);
    let mut coder = SymbolCoder::new(CODING_CONTEXTS, cfg.estimator);
    let mut dec = BinaryDecoder::new(BitReader::new(bytes));
    let img = decode_loop(&mut modeler, &mut coder, &mut dec, width, height);
    let padding = dec.source().padding_bits();
    (img, padding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image, cfg: &CodecConfig) -> EncodeStats {
        let (bytes, stats) = encode_raw(img, cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), cfg);
        assert_eq!(&back, img, "lossless roundtrip failed");
        stats
    }

    #[test]
    fn roundtrip_corpus_images() {
        let cfg = CodecConfig::default();
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img, &cfg);
            assert_eq!(stats.pixels, 48 * 48, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny_images() {
        let cfg = CodecConfig::default();
        for (w, h) in [(1, 1), (1, 8), (8, 1), (2, 3), (17, 5)] {
            let img = Image::from_fn(w, h, |x, y| (x * 31 + y * 17) as u8);
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn constant_image_compresses_hard() {
        let img = Image::from_fn(128, 128, |_, _| 200);
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 0.2,
            "constant image cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn smooth_gradient_compresses_well() {
        let img = Image::from_fn(128, 128, |x, y| ((x + y) / 2) as u8);
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 1.0,
            "gradient cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn noise_does_not_expand_catastrophically() {
        // Incompressible input must stay below ~9.2 bpp (8 bpp + escape
        // decision overhead).
        let img = Image::from_fn(64, 64, |x, y| {
            (cbic_image::synth::lattice(1, x as i64, y as i64) * 256.0) as u8
        });
        let stats = roundtrip(&img, &CodecConfig::default());
        assert!(
            stats.bits_per_pixel() < 9.2,
            "noise cost {} bpp",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn error_feedback_helps_on_textured_content() {
        // The paper's central claim: per-context error feedback cancels
        // prediction bias. On textured natural-like content (the barb
        // stand-in) the 512-context feedback wins clearly.
        let img = CorpusImage::Barb.generate(128, 128);
        let with = roundtrip(&img, &CodecConfig::default());
        let without = roundtrip(
            &img,
            &CodecConfig {
                error_feedback: false,
                ..CodecConfig::default()
            },
        );
        assert!(
            with.bits_per_pixel() < without.bits_per_pixel(),
            "feedback {} vs none {}",
            with.bits_per_pixel(),
            without.bits_per_pixel()
        );
    }

    #[test]
    fn division_kind_changes_little() {
        let img = CorpusImage::Goldhill.generate(96, 96);
        let lut = roundtrip(&img, &CodecConfig::default());
        let exact = roundtrip(
            &img,
            &CodecConfig {
                division: DivisionKind::Exact,
                ..CodecConfig::default()
            },
        );
        let diff = (lut.bits_per_pixel() - exact.bits_per_pixel()).abs();
        assert!(diff < 0.05, "LUT vs exact division differ by {diff} bpp");
    }

    #[test]
    fn texture_bits_sweep_roundtrips() {
        let img = CorpusImage::Peppers.generate(40, 40);
        for bits in 0..=6u8 {
            let cfg = CodecConfig {
                texture_bits: bits,
                ..CodecConfig::default()
            };
            assert_eq!(cfg.compound_contexts(), 8 << bits);
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn count_bits_sweep_roundtrips() {
        let img = CorpusImage::Barb.generate(40, 40);
        for bits in [10u8, 12, 14, 16] {
            let cfg = CodecConfig {
                estimator: EstimatorConfig {
                    count_bits: bits,
                    ..EstimatorConfig::default()
                },
                ..CodecConfig::default()
            };
            roundtrip(&img, &cfg);
        }
    }

    #[test]
    fn decisions_are_nine_per_pixel() {
        let img = CorpusImage::Lena.generate(32, 32);
        let (_, stats) = encode_raw(&img, &CodecConfig::default());
        assert!((stats.decisions_per_pixel() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn stats_bits_match_payload() {
        let img = CorpusImage::Boat.generate(32, 32);
        let (bytes, stats) = encode_raw(&img, &CodecConfig::default());
        assert!(stats.payload_bits <= bytes.len() as u64 * 8);
        assert!(stats.payload_bits + 64 > bytes.len() as u64 * 8);
    }

    #[test]
    fn mismatched_config_decodes_garbage_not_panic() {
        let img = CorpusImage::Zelda.generate(24, 24);
        let (bytes, _) = encode_raw(&img, &CodecConfig::default());
        let wrong = CodecConfig {
            texture_bits: 2,
            ..CodecConfig::default()
        };
        let out = decode_raw(&bytes, 24, 24, &wrong);
        assert_eq!(out.dimensions(), (24, 24));
    }

    #[test]
    fn aging_beats_frozen_statistics() {
        // The paper: rescaling "slightly improves the compression ratio by
        // aging the observed data". Measurable on textured corpus content.
        let img = CorpusImage::Barb.generate(128, 128);
        let aged = roundtrip(&img, &CodecConfig::default());
        let frozen = roundtrip(
            &img,
            &CodecConfig {
                aging: false,
                ..CodecConfig::default()
            },
        );
        assert!(
            aged.bits_per_pixel() < frozen.bits_per_pixel(),
            "aged {} vs frozen {}",
            aged.bits_per_pixel(),
            frozen.bits_per_pixel()
        );
    }
}
