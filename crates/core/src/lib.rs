//! The paper's contribution: context-based lossless grayscale image
//! compression with gradient-adjusted prediction, compound-context error
//! feedback, and tree-driven binary arithmetic coding
//! (Chen, Canagarajah, Nunez-Yanez & Vitulli, IEEE SOCC 2007).
//!
//! # Pipeline
//!
//! For every pixel `X` in raster order (Sections II–III of the paper):
//!
//! 1. **Gradients** `dv`, `dh` over the 7-pixel causal neighbourhood
//!    `{W, WW, N, NN, NE, NW, NNE}` ([`neighborhood`], [`predictor`]).
//! 2. **Primary prediction** `X̂` via the simplified gradient-adjusted
//!    predictor (add/sub/shift only).
//! 3. **Compound context**: a 6-bit texture pattern `t` (six neighbours
//!    compared against `X̂`) and a 3-bit coding-context index `QE`
//!    (quantized error energy `Δ = dh + dv + 2|e_W|`) — **512 contexts**
//!    ([`context`]).
//! 4. **Error feedback**: the context's running error mean
//!    `ē = sum / count` (5-bit count, 13-bit + sign sum, LUT division,
//!    overflow-guard aging) corrects the prediction: `X̃ = X̂ + ē`.
//! 5. **Error mapping**: `e = X − X̃` is wrapped mod `2ⁿ` and zig-zag
//!    folded into the `0..2ⁿ` alphabet ([`remap`]).
//! 6. **Entropy coding**: the folded error is coded by the `QE`-th dynamic
//!    tree of the probability estimator through the binary arithmetic coder
//!    (`cbic-arith`); depths above 8 bits factor the alphabet into a
//!    high-bits bank plus the 8-bit low byte
//!    ([`SampleCoder`](codec::SampleCoder)).
//!
//! The decoder runs the identical model on the reconstructed pixels, so
//! compression is fully lossless. Pixels flow in as zero-copy
//! [`ImageView`](cbic_image::ImageView)s at any 8–16-bit depth.
//!
//! The whole pipeline is implemented **once**, as the table-driven
//! [`engine::PixelEngine`]; the raw codec functions, the hardware model
//! ([`hwpipe`]), the bounded-memory [`stream`] layer, the reusable
//! [`session`]s, and the [`tiles`] band workers are all front ends over
//! that one datapath (see the [`engine`] module for the stage map).
//!
//! # Examples
//!
//! ```
//! use cbic_core::{compress, decompress, CodecConfig};
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Lena.generate(64, 64);
//! let bytes = compress(img.view(), &CodecConfig::default());
//! let restored = decompress(&bytes)?;
//! assert_eq!(img, restored);
//! # Ok::<(), cbic_core::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bigctx;
pub mod codec;
pub mod container;
pub mod context;
pub mod engine;
pub mod grid;
pub mod hwpipe;
pub mod neighborhood;
pub mod predictor;
pub mod remap;
pub mod session;
pub mod stream;
pub mod tiles;

pub use bigctx::WideConfig;
pub use cbic_arith::MAX_LANES;
pub use codec::{
    decode_raw, encode_model_only, encode_raw, CodecConfig, DivisionKind, EncodeStats, ModelMode,
};
pub use container::{compress, compress_with_lanes, decompress, CodecError, Proposed};
pub use engine::{DecoderState, EncoderState, PixelEngine};
pub use grid::{
    compress_grid, decode_roi, decode_roi_any, decode_roi_from, decompress_grid, TileGeometry,
};
pub use session::{DecoderSession, EncoderSession};
pub use stream::{StreamDecoder, StreamEncodeStats, StreamEncoder};
pub use tiles::{compress_tiled_with_lanes, Parallelism, Tiled};

#[cfg(test)]
mod proptests;
