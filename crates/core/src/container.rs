//! Self-describing container format.
//!
//! The raw codec API ([`encode_raw`]) produces a bare
//! arithmetic-coded payload, as the FPGA core would on its output bus. For
//! storage and interchange this module frames it with a small header
//! carrying the dimensions and every model parameter the decoder must
//! mirror:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CBIC"
//! 4       1     version (1 = 8-bit, 2 = explicit depth, 3 = coder lanes,
//!               4 = 2D tile grid with seekable index, 5 = non-classic
//!               context model)
//! 5       1     codec id (1 = SOCC-2007 image codec)
//! 6       4     width  (LE)
//! 10      4     height (LE)
//! 14      1     estimator count_bits
//! 15      2     estimator increment (LE)
//! 17      2     escape init: no-escape count (LE)
//! 19      2     escape init: escape count (LE)
//! 21      1     flags (bit0 feedback, bit1 aging, bit2 exact division)
//! 22      1     texture bits
//! [23     1     sample bit depth (versions 2–5; version 1 means 8)]
//! [24     1     lane count N (version 3: 2..=32; versions 4–5: 1..=32)]
//! [25     4×N   per-lane substream lengths in bytes (LE, version 3 only)]
//! [25     4     tile width in pixels (LE, version 4 only)]
//! [29     4     tile height in pixels (LE, version 4 only)]
//! [33     16×T  tile index, T = cols×rows entries (version 4 only; see
//!               the `grid` module for the entry layout)]
//! [25     1     model byte: wide-hash banks_log2, 4..=16 (version 5)]
//! [26     1     layout flag: 0 = flat payload, 1 = tile grid (version 5)]
//! [27     4+4   tile width/height (LE, version 5 with layout flag 1),
//!               followed by the 16×T tile index as in version 4]
//! ...     ...   arithmetic-coded payload (after the v3 lane table when
//!               N ≥ 2 on a flat container)
//! ```
//!
//! 8-bit images are written as version 1 — byte-identical to every
//! container this codec has ever produced — and deeper samples get the
//! version-2 header with its bit-depth field. Decoders accept both.
//!
//! # Version 3: lane-interleaved payloads
//!
//! Version 3 carries the same model parameters (its bit-depth byte is
//! always present) plus a **lane count** `N` and a length table, and its
//! payload is `N` independent arithmetic-coded substreams, concatenated in
//! lane order with no padding between them. The encoder deals the coded
//! binary decisions round-robin across `N` coder interval states while the
//! adaptive model stays shared and sequential, so the *decisions* are
//! identical for every lane count — only their packing changes (see
//! [`cbic_arith::LaneEncoder`] for the striping rule). Version 3 is only
//! emitted when `lanes ≥ 2`: single-lane encodes keep producing version
//! 1/2 containers, so the format upgrade cannot perturb existing streams,
//! and version-1/2 decoding is untouched.
//!
//! # Version 4: 2D tile grid with a seekable index
//!
//! Version 4 partitions the image into a 2D grid of independently
//! decodable tiles and records a serialized tile index (per-tile byte
//! offset, length, and CRC-32 checksum) right after the fixed header, so
//! a decoder can seek to any tile in `O(1)` without touching the rest of
//! the payload — random-access crop decodes and parallel whole-image
//! decodes both fall out of that. The v4 read/write paths live in the
//! [`grid`](crate::grid) module; this module's [`decompress`] and
//! internal header reader recognize the version and dispatch.
//!
//! # Version 5: non-classic context models
//!
//! Version 5 carries one extra **model byte** — the `banks_log2` of the
//! enlarged hash-banked context model ([`crate::bigctx`]) — plus a layout
//! flag selecting a flat payload (with the v3 lane table when striped) or
//! a v4-style tile grid. It is emitted **only** when the encoder was
//! explicitly asked for [`ModelMode::WideHash`](crate::ModelMode): classic
//! encodes keep producing versions 1–4 byte-identically, so every
//! pre-existing container and fixture is untouched.

use crate::codec::{
    decode_raw_into, decode_raw_lanes_into, encode_raw, encode_raw_lanes, CodecConfig, ModelMode,
    MAX_CODE_PADDING_BITS,
};
use crate::context::DivisionKind;
use crate::session::EncoderSession;
use cbic_arith::{EstimatorConfig, MAX_LANES};
use cbic_image::{
    CbicError, Codec, CountingSink, DecodeOptions, EncodeOptions, Image, ImageView,
    BANKS_LOG2_RANGE,
};
use std::fmt;
use std::io::{Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"CBIC";
const VERSION_V1: u8 = 1;
const VERSION_V2: u8 = 2;
const VERSION_V3: u8 = 3;
pub(crate) const VERSION_V4: u8 = 4;
pub(crate) const VERSION_V5: u8 = 5;
const CODEC_ID: u8 = 1;

/// Size in bytes of the version-1 container header preceding the coded
/// payload (the version-2 header adds one bit-depth byte, version 3 a
/// bit-depth and a lane-count byte, followed by its per-lane length table).
pub const HEADER_LEN: usize = 23;

/// Size in bytes of the longest fixed header the pre-v5 versions use
/// (the version-3 lane length table that follows is sized by the lane
/// count), and the offset of the v3 lane table / v4 tile-dimension words.
/// Version 5 extends the fixed prefix further (model byte, layout flag,
/// optional tile dimensions — the internal header writer sizes its
/// buffer for the longest case).
pub const MAX_HEADER_LEN: usize = HEADER_LEN + 2;

/// Buffer size covering the longest fixed header any version can emit:
/// the 27-byte flat v5 prefix plus the tiled layout's two dimension words.
pub(crate) const HEADER_BUF_LEN: usize = HEADER_LEN + 4 + 8;

/// Errors returned when parsing a container.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The stream does not start with the `CBIC` magic.
    BadMagic,
    /// Unknown container version.
    UnsupportedVersion(u8),
    /// Unknown codec identifier.
    UnsupportedCodec(u8),
    /// The stream ended before its content did (short header, or an
    /// arithmetic payload cut off mid-image).
    Truncated,
    /// A header field holds an invalid value.
    InvalidHeader(String),
    /// An underlying I/O failure on a streaming source or sink. The
    /// [`io::ErrorKind`](std::io::ErrorKind) is carried alongside the
    /// message so it survives into [`CbicError::Io`] (the original
    /// [`std::io::Error`] is not stored, to keep this error `Clone`).
    Io(std::io::ErrorKind, String),
}

impl CodecError {
    /// Captures an [`std::io::Error`], preserving its kind.
    pub fn io(e: &std::io::Error) -> Self {
        Self::Io(e.kind(), e.to_string())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBIC magic"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            Self::UnsupportedCodec(c) => write!(f, "unsupported codec id {c}"),
            Self::Truncated => write!(f, "truncated container"),
            Self::InvalidHeader(msg) => write!(f, "invalid header: {msg}"),
            Self::Io(_, msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for CbicError {
    /// Structured, lossless mapping into the workspace hierarchy: every
    /// variant lands on its [`CbicError`] counterpart, and the I/O kind is
    /// preserved.
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::BadMagic => CbicError::BadMagic { found: None },
            CodecError::UnsupportedVersion(v) => CbicError::UnsupportedVersion(v),
            CodecError::UnsupportedCodec(c) => CbicError::UnsupportedCodec(c),
            CodecError::Truncated => CbicError::Truncated,
            CodecError::InvalidHeader(msg) => CbicError::InvalidContainer(msg),
            CodecError::Io(kind, msg) => CbicError::from(std::io::Error::new(kind, msg)),
        }
    }
}

/// Everything a container header declares: the model configuration, the
/// image geometry, and the sample bit depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerHeader {
    /// The model configuration the decoder must mirror.
    pub cfg: CodecConfig,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Sample bit depth (`1..=16`; version-1 containers are always 8).
    pub bit_depth: u8,
    /// Interleaved coder lanes (`1` for version-1/2 containers, `2..=32`
    /// for version 3, `1..=32` for version 4; see [`compress_with_lanes`]).
    pub lanes: u8,
    /// Tile geometry `(tile_w, tile_h)` of a version-4 grid container;
    /// `None` for the flat v1–v3 formats. When set, the bytes following
    /// the fixed header are the tile index and the per-tile substreams
    /// (see [`grid`](crate::grid)), not a flat payload.
    pub tile: Option<(u32, u32)>,
}

/// Compresses the pixels of a view into a self-describing container.
///
/// # Examples
///
/// ```
/// use cbic_core::{compress, decompress, CodecConfig};
/// use cbic_image::Image;
///
/// let img = Image::from_fn(16, 16, |x, y| (x * y) as u8);
/// let bytes = compress(img.view(), &CodecConfig::default());
/// assert_eq!(decompress(&bytes)?, img);
///
/// let deep = Image::from_fn16(16, 16, 12, |x, y| (x * 200 + y) as u16);
/// let bytes = compress(deep.view(), &CodecConfig::default());
/// assert_eq!(decompress(&bytes)?, deep);
/// # Ok::<(), cbic_core::CodecError>(())
/// ```
pub fn compress(img: ImageView<'_>, cfg: &CodecConfig) -> Vec<u8> {
    let (payload, _) = encode_raw(img, cfg);
    let (hdr, len) = header_bytes(cfg, img.width(), img.height(), img.bit_depth(), 1);
    let mut out = Vec::with_capacity(len + payload.len());
    out.extend_from_slice(&hdr[..len]);
    out.extend_from_slice(&payload);
    out
}

/// [`compress`] over `lanes` interleaved coder lanes.
///
/// With one lane this is exactly [`compress`] (same version-1/2 container,
/// byte for byte). With `lanes ≥ 2` the decisions are dealt round-robin
/// across independent coder interval states (see
/// [`encode_raw_lanes`]) and the result is
/// a version-3 container: lane-count byte, per-lane length table, then the
/// concatenated substreams. The decoded pixels are identical for every
/// lane count.
///
/// # Examples
///
/// ```
/// use cbic_core::{compress_with_lanes, decompress, CodecConfig};
/// use cbic_image::Image;
///
/// let img = Image::from_fn(32, 32, |x, y| (x * 3 + y) as u8);
/// let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), 4);
/// assert_eq!(decompress(&bytes)?, img);
/// # Ok::<(), cbic_core::CodecError>(())
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid or `lanes` is zero or above
/// [`cbic_arith::MAX_LANES`].
pub fn compress_with_lanes(img: ImageView<'_>, cfg: &CodecConfig, lanes: usize) -> Vec<u8> {
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "lane count {lanes} outside 1..={MAX_LANES}"
    );
    if lanes < 2 {
        return compress(img, cfg);
    }
    let (subs, _) = encode_raw_lanes(img, cfg, lanes);
    let (hdr, len) = header_bytes(cfg, img.width(), img.height(), img.bit_depth(), lanes as u8);
    let body: usize = subs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(len + 4 * lanes + body);
    out.extend_from_slice(&hdr[..len]);
    for sub in &subs {
        out.extend_from_slice(&(sub.len() as u32).to_le_bytes());
    }
    for sub in &subs {
        out.extend_from_slice(sub);
    }
    out
}

/// Serializes the container header for a `width`×`height` image of the
/// given depth coded with `cfg` over `lanes` coder lanes, returning the
/// buffer and the header length (23 bytes of version 1 for single-lane
/// 8-bit samples — byte-identical to the historical format — 24 bytes of
/// version 2 for deeper single-lane images, 25 bytes of version 3 when
/// `lanes ≥ 2`, and 27 bytes of version 5 whenever `cfg.model` is
/// non-classic; the v3 per-lane length table is written separately, once
/// the substream lengths are known, and the v5 layout flag starts at 0 —
/// the grid writer flips it and appends the tile dimensions).
/// [`compress`], the sessions, and the streaming
/// [`StreamEncoder`](crate::stream::StreamEncoder) share this, which is
/// what keeps their outputs byte-identical.
pub(crate) fn header_bytes(
    cfg: &CodecConfig,
    width: usize,
    height: usize,
    bit_depth: u8,
    lanes: u8,
) -> ([u8; HEADER_BUF_LEN], usize) {
    debug_assert!((1..=MAX_LANES as u8).contains(&lanes));
    let mut out = [0u8; HEADER_BUF_LEN];
    out[..4].copy_from_slice(MAGIC);
    let wide_banks = cfg.model.banks_log2();
    out[4] = if wide_banks.is_some() {
        VERSION_V5
    } else if lanes >= 2 {
        VERSION_V3
    } else if bit_depth == 8 {
        VERSION_V1
    } else {
        VERSION_V2
    };
    out[5] = CODEC_ID;
    out[6..10].copy_from_slice(&(width as u32).to_le_bytes());
    out[10..14].copy_from_slice(&(height as u32).to_le_bytes());
    out[14] = cfg.estimator.count_bits;
    out[15..17].copy_from_slice(&cfg.estimator.increment.to_le_bytes());
    out[17..19].copy_from_slice(&cfg.estimator.escape_init.0.to_le_bytes());
    out[19..21].copy_from_slice(&cfg.estimator.escape_init.1.to_le_bytes());
    let mut flags = 0u8;
    flags |= u8::from(cfg.error_feedback);
    flags |= u8::from(cfg.aging) << 1;
    flags |= u8::from(cfg.division == DivisionKind::Exact) << 2;
    out[21] = flags;
    out[22] = cfg.texture_bits;
    if let Some(banks_log2) = wide_banks {
        debug_assert!(BANKS_LOG2_RANGE.contains(&banks_log2));
        // Version 5: depth, lane count (floor 1, like v4), the model
        // byte, and the flat/tiled layout flag.
        out[23] = bit_depth;
        out[24] = lanes;
        out[25] = banks_log2;
        out[26] = 0;
        (out, HEADER_LEN + 4)
    } else if lanes >= 2 {
        // Version 3 always spells out the depth, then the lane count.
        out[23] = bit_depth;
        out[24] = lanes;
        (out, HEADER_LEN + 2)
    } else if bit_depth == 8 {
        (out, HEADER_LEN)
    } else {
        out[23] = bit_depth;
        (out, HEADER_LEN + 1)
    }
}

/// The container's pixel ceiling: 2^28 = 256 Mpixel, far beyond any image
/// this codec targets, small enough that a corrupted header can never
/// trigger a huge allocation.
pub(crate) const MAX_PIXELS: usize = 1 << 28;

/// The single dimension gate every path shares — the decode-side header
/// validation ([`parse_header`]) and the encode-side guards
/// ([`StreamEncoder::new`](crate::stream::StreamEncoder::new), the
/// sessions), so an hours-long encode cannot produce a container the
/// decoder would refuse.
pub(crate) fn check_container_dimensions(width: usize, height: usize) -> Result<(), CodecError> {
    if width > u32::MAX as usize
        || height > u32::MAX as usize
        || width.saturating_mul(height) > MAX_PIXELS
    {
        return Err(CodecError::InvalidHeader(format!(
            "{width}x{height} exceeds the 2^28-pixel container limit"
        )));
    }
    Ok(())
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns a [`CodecError`] when the header is malformed, or
/// [`CodecError::Truncated`] when the arithmetic payload ends well before
/// the header-declared pixel count was decoded (the decoder had to invent
/// more padding bits than any complete payload requires).
pub fn decompress(bytes: &[u8]) -> Result<Image, CodecError> {
    let (hdr, payload) = parse_header(bytes)?;
    if hdr.tile.is_some() {
        // Version 4: the bytes after the fixed header are the tile index
        // plus per-tile substreams, decoded by the grid subsystem.
        return crate::grid::decompress_grid(bytes, cbic_image::Parallelism::Sequential);
    }
    let mut img = Image::with_depth(hdr.width, hdr.height, hdr.bit_depth);
    decode_payload_into(&hdr, payload, &mut img.view_mut())?;
    Ok(img)
}

/// Parses a container header, returning the declared header fields and
/// the payload slice (for a version-4 grid container the "payload" is the
/// tile index followed by the per-tile substreams; see
/// [`grid::parse_grid`](crate::grid::parse_grid) for the structured view).
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first malformed field.
pub fn parse_header(bytes: &[u8]) -> Result<(ContainerHeader, &[u8]), CodecError> {
    let mut source = bytes;
    let hdr = read_header(&mut source)?;
    Ok((hdr, source))
}

/// Reads and validates one container header off a stream, leaving the
/// reader positioned at the first payload byte — shared by the slice path
/// ([`parse_header`]) and the streaming decoders.
pub(crate) fn read_header<R: Read + ?Sized>(input: &mut R) -> Result<ContainerHeader, CodecError> {
    // Magic first, before demanding a full header: a short foreign-format
    // input must report BadMagic (so format sniffers can move on), not
    // pose as a truncated CBIC stream.
    let mut bytes = [0u8; HEADER_LEN];
    input
        .read_exact(&mut bytes[..4])
        .map_err(eof_is_truncated)?;
    if &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    input
        .read_exact(&mut bytes[4..])
        .map_err(eof_is_truncated)?;
    let version = bytes[4];
    if !(VERSION_V1..=VERSION_V5).contains(&version) {
        return Err(CodecError::UnsupportedVersion(version));
    }
    if bytes[5] != CODEC_ID {
        return Err(CodecError::UnsupportedCodec(bytes[5]));
    }
    let rd32 = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let rd16 = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap());
    let width = rd32(6) as usize;
    let height = rd32(10) as usize;
    if width == 0 || height == 0 {
        return Err(CodecError::InvalidHeader("zero dimension".into()));
    }
    // Defensive cap: a corrupted header must not trigger a huge allocation.
    check_container_dimensions(width, height)?;
    let count_bits = bytes[14];
    if !(10..=16).contains(&count_bits) {
        return Err(CodecError::InvalidHeader(format!(
            "count_bits {count_bits} outside 10..=16"
        )));
    }
    let max_total = (1u32 << count_bits) - 1;
    let increment = rd16(15);
    if increment == 0 || u32::from(increment) > max_total / 2 {
        return Err(CodecError::InvalidHeader(format!(
            "increment {increment} outside 1..={}",
            max_total / 2
        )));
    }
    let esc0 = rd16(17);
    let esc1 = rd16(19);
    if esc0 == 0 || esc1 == 0 || u32::from(esc0) + u32::from(esc1) > max_total {
        return Err(CodecError::InvalidHeader("invalid escape init".into()));
    }
    let flags = bytes[21];
    let texture_bits = bytes[22];
    if texture_bits > 6 {
        return Err(CodecError::InvalidHeader(format!(
            "texture_bits {texture_bits} outside 0..=6"
        )));
    }
    let bit_depth = if version >= VERSION_V2 {
        let mut depth = [0u8; 1];
        input.read_exact(&mut depth).map_err(eof_is_truncated)?;
        if !(1..=16).contains(&depth[0]) {
            return Err(CodecError::InvalidHeader(format!(
                "bit depth {} outside 1..=16",
                depth[0]
            )));
        }
        depth[0]
    } else {
        8
    };
    let lanes = if version >= VERSION_V3 {
        let mut lanes = [0u8; 1];
        input.read_exact(&mut lanes).map_err(eof_is_truncated)?;
        // Single-lane streams are written as version 1/2, so a version-3
        // lane byte below 2 can only come from corruption. Versions 4 and
        // 5 always carry the lane byte and legitimately allow 1.
        let floor = if version == VERSION_V3 { 2 } else { 1 };
        if !(floor..=MAX_LANES as u8).contains(&lanes[0]) {
            return Err(CodecError::InvalidHeader(format!(
                "lane count {} outside {floor}..={MAX_LANES}",
                lanes[0]
            )));
        }
        lanes[0]
    } else {
        1
    };
    let (model, v5_tiled) = if version == VERSION_V5 {
        // The model byte and the flat/tiled layout flag. Version 5 exists
        // only for non-classic models, so a model byte outside the wide
        // bank range can only come from corruption.
        let mut mb = [0u8; 2];
        input.read_exact(&mut mb).map_err(eof_is_truncated)?;
        let banks_log2 = mb[0];
        if !BANKS_LOG2_RANGE.contains(&banks_log2) {
            return Err(CodecError::InvalidHeader(format!(
                "model banks_log2 {banks_log2} outside {}..={}",
                BANKS_LOG2_RANGE.start(),
                BANKS_LOG2_RANGE.end()
            )));
        }
        if mb[1] > 1 {
            return Err(CodecError::InvalidHeader(format!(
                "layout flag {} outside 0..=1",
                mb[1]
            )));
        }
        (ModelMode::WideHash { banks_log2 }, mb[1] == 1)
    } else {
        (ModelMode::Classic, false)
    };
    let tile = if version == VERSION_V4 || v5_tiled {
        let mut t = [0u8; 8];
        input.read_exact(&mut t).map_err(eof_is_truncated)?;
        let tile_w = u32::from_le_bytes(t[..4].try_into().expect("sized"));
        let tile_h = u32::from_le_bytes(t[4..].try_into().expect("sized"));
        if tile_w == 0 || tile_h == 0 {
            return Err(CodecError::InvalidHeader("zero tile dimension".into()));
        }
        Some((tile_w, tile_h))
    } else {
        None
    };
    let cfg = CodecConfig {
        estimator: EstimatorConfig {
            count_bits,
            increment,
            escape_init: (esc0, esc1),
        },
        error_feedback: flags & 1 != 0,
        aging: flags & 2 != 0,
        division: if flags & 4 != 0 {
            DivisionKind::Exact
        } else {
            DivisionKind::Lut
        },
        texture_bits,
        model,
    };
    Ok(ContainerHeader {
        cfg,
        width,
        height,
        bit_depth,
        lanes,
        tile,
    })
}

/// Maps mid-header/table EOF to [`CodecError::Truncated`], any other I/O
/// failure to [`CodecError::Io`].
fn eof_is_truncated(e: std::io::Error) -> CodecError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        CodecError::Truncated
    } else {
        CodecError::io(&e)
    }
}

/// Reads the version-3 per-lane length table (`lanes` little-endian `u32`
/// byte counts) following the fixed header — shared by every v3 decode
/// path so the framing is parsed exactly one way.
pub(crate) fn read_lane_table<R: Read + ?Sized>(
    input: &mut R,
    lanes: usize,
) -> Result<Vec<u32>, CodecError> {
    let mut table = vec![0u8; lanes * 4];
    input.read_exact(&mut table).map_err(eof_is_truncated)?;
    Ok(table
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("sized")))
        .collect())
}

/// Parses the per-lane length table and substream slices out of a
/// version-3 payload (the bytes following the fixed header, as returned by
/// [`parse_header`]).
///
/// # Errors
///
/// [`CodecError::Truncated`] when the payload ends inside the table or a
/// substream, and [`CodecError::InvalidHeader`] for non-v3 headers.
pub fn split_lane_payload<'a>(
    hdr: &ContainerHeader,
    payload: &'a [u8],
) -> Result<Vec<&'a [u8]>, CodecError> {
    if hdr.lanes < 2 {
        return Err(CodecError::InvalidHeader(
            "single-lane containers carry no lane table".into(),
        ));
    }
    let lanes = hdr.lanes as usize;
    let mut source = payload;
    let table = read_lane_table(&mut source, lanes)?;
    let mut subs = Vec::with_capacity(lanes);
    let mut pos = 0usize;
    for len in table {
        let len = len as usize;
        subs.push(source.get(pos..pos + len).ok_or(CodecError::Truncated)?);
        pos += len;
    }
    Ok(subs)
}

/// Arithmetic-decodes one container's payload (everything after the fixed
/// header) into `out`, dispatching on the header's lane count — the one
/// decode step the slice path ([`decompress`]) and the tiled band decoders
/// share.
pub(crate) fn decode_payload_into(
    hdr: &ContainerHeader,
    payload: &[u8],
    out: &mut cbic_image::ImageViewMut<'_>,
) -> Result<(), CodecError> {
    let padding = if hdr.lanes >= 2 {
        let subs = split_lane_payload(hdr, payload)?;
        decode_raw_lanes_into(&subs, out, &hdr.cfg)
    } else {
        decode_raw_into(payload, out, &hdr.cfg)
    };
    if padding > MAX_CODE_PADDING_BITS {
        return Err(CodecError::Truncated);
    }
    Ok(())
}

/// The paper's codec on the unified [`Codec`] surface.
///
/// # Examples
///
/// ```
/// use cbic_core::Proposed;
/// use cbic_image::{Codec, DecodeOptions, EncodeOptions, Image};
///
/// let codec: &dyn Codec = &Proposed::default();
/// let img = Image::from_fn(16, 16, |x, y| (x * y) as u8);
/// let bytes = codec.encode_vec(img.view(), &EncodeOptions::default())?;
/// assert_eq!(codec.decode_vec(&bytes, &DecodeOptions::default())?, img);
/// assert_eq!(codec.name(), "proposed");
/// # Ok::<(), cbic_image::CbicError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Proposed(pub CodecConfig);

impl Codec for Proposed {
    fn name(&self) -> &'static str {
        "proposed"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    /// Classic compound contexts plus the wide-hash model of
    /// [`bigctx`](crate::bigctx), selected per encode via
    /// [`EncodeOptions::with_model`].
    fn model_modes(&self) -> &'static [&'static str] {
        &["classic", "wide"]
    }

    /// Streams the container into `sink` through a one-shot
    /// [`EncoderSession`] — no output buffer, byte-identical to
    /// [`compress`] (or, for `opts.lanes ≥ 2`, to [`compress_with_lanes`]).
    /// The returned stats carry the exact payload bits, so
    /// [`Codec::payload_bits_per_pixel`] costs a single counting pass.
    ///
    /// When `opts.tile` is set the output is a version-4 grid container
    /// instead ([`grid::compress_grid`](crate::grid::compress_grid)),
    /// with its tiles coded on `opts.parallelism` workers — the bytes
    /// still do not depend on the schedule.
    fn encode(
        &self,
        img: ImageView<'_>,
        opts: &EncodeOptions,
        sink: &mut dyn Write,
    ) -> Result<cbic_image::EncodeStats, CbicError> {
        if !(1..=MAX_LANES).contains(&opts.lanes) {
            return Err(CbicError::InvalidContainer(format!(
                "lane count {} outside 1..={MAX_LANES}",
                opts.lanes
            )));
        }
        // A non-classic request on the options overrides the codec's own
        // model; the classic default defers to it, so existing configs
        // keep encoding byte-identically.
        let mut cfg = self.0;
        if !opts.model.is_classic() {
            cfg.model = opts.model;
        }
        cfg.model.validate().map_err(CbicError::InvalidContainer)?;
        if let Some((tile_w, tile_h)) = opts.tile {
            if tile_w == 0 || tile_h == 0 {
                return Err(CbicError::InvalidContainer(
                    "tile dimensions must be nonzero".into(),
                ));
            }
            check_container_dimensions(img.width(), img.height()).map_err(CbicError::from)?;
            let geom = crate::grid::TileGeometry::new(tile_w, tile_h);
            let (bytes, payload_bits) =
                crate::grid::compress_grid_with_bits(img, &cfg, geom, opts.lanes, opts.parallelism);
            sink.write_all(&bytes).map_err(CbicError::from)?;
            return Ok(cbic_image::EncodeStats::new(
                img.pixel_count() as u64,
                bytes.len() as u64,
                Some(payload_bits),
            ));
        }
        let mut counting = CountingSink::wrap(sink);
        let stats = EncoderSession::with_lanes(&cfg, opts.lanes).encode(img, &mut counting)?;
        Ok(cbic_image::EncodeStats::new(
            stats.pixels,
            counting.bytes_written(),
            Some(stats.payload_bits),
        ))
    }

    /// True streaming: rows are reconstructed one at a time through
    /// [`StreamDecoder`](crate::stream::StreamDecoder) without slurping
    /// the compressed stream. Version-4 grid containers are dispatched to
    /// the [`grid`](crate::grid) decoder instead (buffered, with tiles
    /// decoded on `opts.parallelism` workers), and `opts.roi` requests a
    /// random-access crop — tile-selective on v4, decode-then-crop on the
    /// flat v1–v3 formats.
    fn decode(&self, source: &mut dyn Read, opts: &DecodeOptions) -> Result<Image, CbicError> {
        if let Some(roi) = opts.roi {
            let mut bytes = Vec::new();
            source.read_to_end(&mut bytes).map_err(CbicError::from)?;
            return crate::grid::decode_roi_any(&bytes, roi, opts.parallelism)
                .map_err(CbicError::from);
        }
        let hdr = read_header(source).map_err(CbicError::from)?;
        if hdr.tile.is_some() {
            return crate::grid::decode_grid_after_header(&hdr, source, opts.parallelism)
                .map_err(CbicError::from);
        }
        crate::stream::StreamDecoder::with_header(hdr, source)
            .and_then(crate::stream::StreamDecoder::decode_all)
            .map_err(CbicError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn container_roundtrip_default_config() {
        let img = CorpusImage::Lena.generate(40, 40);
        let bytes = compress(img.view(), &CodecConfig::default());
        assert_eq!(decompress(&bytes).unwrap(), img);
    }

    #[test]
    fn eight_bit_containers_stay_version_one() {
        let img = CorpusImage::Lena.generate(16, 16);
        let bytes = compress(img.view(), &CodecConfig::default());
        assert_eq!(bytes[4], VERSION_V1, "8-bit streams keep the old format");
        let (hdr, _) = parse_header(&bytes).unwrap();
        assert_eq!(hdr.bit_depth, 8);
    }

    #[test]
    fn deep_containers_carry_their_depth() {
        let img = Image::from_fn16(20, 12, 12, |x, y| (x * 200 + y) as u16);
        let bytes = compress(img.view(), &CodecConfig::default());
        assert_eq!(bytes[4], VERSION_V2);
        assert_eq!(bytes[23], 12);
        let (hdr, _) = parse_header(&bytes).unwrap();
        assert_eq!(hdr.bit_depth, 12);
        assert_eq!((hdr.width, hdr.height), (20, 12));
        let back = decompress(&bytes).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.bit_depth(), 12);
    }

    #[test]
    fn container_roundtrip_nondefault_config() {
        let img = CorpusImage::Mandrill.generate(32, 32);
        let cfg = CodecConfig {
            estimator: EstimatorConfig {
                count_bits: 11,
                increment: 7,
                escape_init: (3, 2),
            },
            error_feedback: false,
            aging: false,
            division: DivisionKind::Exact,
            texture_bits: 3,
            model: ModelMode::Classic,
        };
        let bytes = compress(img.view(), &cfg);
        // The header must carry the config: decode with no prior knowledge.
        assert_eq!(decompress(&bytes).unwrap(), img);
        let (hdr, _) = parse_header(&bytes).unwrap();
        assert_eq!(hdr.cfg, cfg);
        assert_eq!((hdr.width, hdr.height), (32, 32));
    }

    #[test]
    fn rejects_bad_magic() {
        let img = CorpusImage::Zelda.generate(16, 16);
        let mut bytes = compress(img.view(), &CodecConfig::default());
        bytes[0] = b'X';
        assert_eq!(decompress(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_bad_version_and_codec() {
        let img = CorpusImage::Zelda.generate(16, 16);
        let mut bytes = compress(img.view(), &CodecConfig::default());
        bytes[4] = 9;
        assert_eq!(decompress(&bytes), Err(CodecError::UnsupportedVersion(9)));
        bytes[4] = 1;
        bytes[5] = 7;
        assert_eq!(decompress(&bytes), Err(CodecError::UnsupportedCodec(7)));
    }

    #[test]
    fn rejects_truncation() {
        assert_eq!(decompress(b"CBIC"), Err(CodecError::Truncated));
        assert_eq!(decompress(b""), Err(CodecError::Truncated));
        // A short *foreign* stream is a magic mismatch, not a truncated
        // CBIC container — format sniffers rely on the distinction.
        assert_eq!(decompress(b"CBSL\x01\x02\x03"), Err(CodecError::BadMagic));
        assert_eq!(decompress(b"XYZ"), Err(CodecError::Truncated));
        // A version-2 header cut off before its depth byte.
        let img = Image::from_fn16(8, 8, 10, |x, _| x as u16);
        let bytes = compress(img.view(), &CodecConfig::default());
        assert_eq!(
            parse_header(&bytes[..HEADER_LEN]).err(),
            Some(CodecError::Truncated)
        );
    }

    #[test]
    fn rejects_invalid_fields() {
        let img = CorpusImage::Zelda.generate(16, 16);
        let mut bytes = compress(img.view(), &CodecConfig::default());
        bytes[14] = 42; // count_bits
        assert!(matches!(
            decompress(&bytes),
            Err(CodecError::InvalidHeader(_))
        ));
        // A version-2 depth byte outside 1..=16.
        let deep = Image::from_fn16(8, 8, 10, |x, _| x as u16);
        let mut bytes = compress(deep.view(), &CodecConfig::default());
        bytes[23] = 31;
        assert!(matches!(
            decompress(&bytes),
            Err(CodecError::InvalidHeader(_))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
    }

    #[test]
    fn lane_striped_containers_use_version_three() {
        let img = CorpusImage::Lena.generate(32, 24);
        for lanes in [2usize, 4, 8, MAX_LANES] {
            let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
            assert_eq!(bytes[4], VERSION_V3, "lanes={lanes}");
            assert_eq!(bytes[24] as usize, lanes, "lane byte");
            let (hdr, payload) = parse_header(&bytes).unwrap();
            assert_eq!(hdr.lanes as usize, lanes);
            assert_eq!(hdr.bit_depth, 8, "v3 always carries the depth byte");
            // The length table accounts for every payload byte.
            let subs = split_lane_payload(&hdr, payload).unwrap();
            assert_eq!(subs.len(), lanes);
            let total: usize = subs.iter().map(|s| s.len()).sum();
            assert_eq!(lanes * 4 + total, payload.len());
            assert_eq!(decompress(&bytes).unwrap(), img, "lanes={lanes}");
        }
    }

    #[test]
    fn single_lane_stays_on_the_legacy_container() {
        let img = CorpusImage::Mandrill.generate(24, 24);
        let cfg = CodecConfig::default();
        assert_eq!(
            compress_with_lanes(img.view(), &cfg, 1),
            compress(img.view(), &cfg),
            "lanes=1 must be byte-identical to the classic v1 stream"
        );
    }

    #[test]
    fn decoded_output_is_identical_across_lane_counts() {
        // Striping splits the *carrier*, not the model: every lane count
        // must reconstruct the same pixels, 8-bit and deep alike.
        let images = [
            CorpusImage::Zelda.generate(33, 17),
            Image::from_fn16(21, 13, 12, |x, y| ((x * 331 + y * 17) % 4096) as u16),
        ];
        for img in &images {
            for lanes in [2usize, 3, 8] {
                let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), lanes);
                assert_eq!(&decompress(&bytes).unwrap(), img, "lanes={lanes}");
            }
        }
    }

    #[test]
    fn deep_lane_containers_carry_depth_and_lanes() {
        let img = Image::from_fn16(16, 16, 10, |x, y| ((x + y) * 3) as u16);
        let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), 4);
        assert_eq!(bytes[4], VERSION_V3);
        assert_eq!(bytes[23], 10, "depth byte");
        assert_eq!(bytes[24], 4, "lane byte");
        let back = decompress(&bytes).unwrap();
        assert_eq!(back, img);
        assert_eq!(back.bit_depth(), 10);
    }

    #[test]
    fn rejects_bad_lane_byte() {
        let img = CorpusImage::Lena.generate(16, 16);
        let mut bytes = compress_with_lanes(img.view(), &CodecConfig::default(), 2);
        for bad in [0u8, 1, MAX_LANES as u8 + 1, 255] {
            bytes[24] = bad;
            assert!(
                matches!(decompress(&bytes), Err(CodecError::InvalidHeader(_))),
                "lane byte {bad} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_truncated_lane_table_and_substreams() {
        let img = CorpusImage::Lena.generate(24, 24);
        let bytes = compress_with_lanes(img.view(), &CodecConfig::default(), 4);
        let table_end = MAX_HEADER_LEN + 4 * 4;
        // Cut inside the fixed header, inside the length table, and inside
        // the substream area: all must surface as Truncated, never panic.
        for cut in [MAX_HEADER_LEN - 1, MAX_HEADER_LEN + 3, table_end + 1] {
            assert_eq!(
                decompress(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn forged_lane_lengths_fail_without_allocating() {
        let img = CorpusImage::Lena.generate(24, 24);
        let mut bytes = compress_with_lanes(img.view(), &CodecConfig::default(), 2);
        // Claim lane 0 holds 4 GiB - 1 bytes: the slice-bounds check must
        // reject it as truncation before any decode work happens.
        bytes[MAX_HEADER_LEN..MAX_HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decompress(&bytes), Err(CodecError::Truncated));
    }

    #[test]
    fn split_lane_payload_rejects_single_lane_headers() {
        let img = CorpusImage::Lena.generate(16, 16);
        let bytes = compress(img.view(), &CodecConfig::default());
        let (hdr, payload) = parse_header(&bytes).unwrap();
        assert!(matches!(
            split_lane_payload(&hdr, payload),
            Err(CodecError::InvalidHeader(_))
        ));
    }
}
