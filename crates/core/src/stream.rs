//! Bounded-memory streaming codec over `std::io::Read` / `std::io::Write`.
//!
//! The paper's Fig. 3 architecture is a stream machine: three rotating line
//! buffers, one pixel per cycle, bits trickling out of the arithmetic coder
//! as they resolve. [`compress`](crate::compress)/[`decompress`](crate::decompress)
//! hide that behind fully materialized `Vec<u8>` buffers, which caps image
//! size by RAM. This module exposes the hardware's actual shape in
//! software:
//!
//! * [`StreamEncoder`] — feed pixel rows, bits flow into any `io::Write`;
//! * [`StreamDecoder`] — pull reconstructed rows out of any `io::Read`.
//!
//! Both keep **O(3 lines + estimator tables)** of state — the
//! [`LineBuffers`](crate::hwpipe::LineBuffers) machinery of the hardware
//! model plus one 4 KiB transport buffer — independent of image height, so
//! a 64-megapixel image pipes through in a few hundred kilobytes of codec
//! memory. Rows are `u16` samples at any 8–16-bit depth; the emitted
//! container is **byte-identical** to [`compress`](crate::compress) (same
//! header, same arithmetic payload), which the differential test suite and
//! the golden corpus pin down.
//!
//! # Examples
//!
//! ```
//! use cbic_core::stream::{StreamDecoder, StreamEncoder};
//! use cbic_core::CodecConfig;
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Boat.generate(32, 32);
//! let cfg = CodecConfig::default();
//!
//! // Encode row-at-a-time into any io::Write.
//! let mut enc = StreamEncoder::new(Vec::new(), 32, 32, &cfg)?;
//! for y in 0..32 {
//!     enc.push_row(img.row(y))?;
//! }
//! let bytes = enc.finish()?;
//! assert_eq!(bytes, cbic_core::compress(img.view(), &cfg)); // byte-identical
//!
//! // Decode row-at-a-time from any io::Read.
//! let mut dec = StreamDecoder::new(&bytes[..]).unwrap();
//! let mut row = vec![0u16; 32];
//! for y in 0..32 {
//!     dec.next_row(&mut row).unwrap();
//!     assert_eq!(&row[..], img.row(y));
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::codec::{CodecConfig, MAX_CODE_PADDING_BITS};
use crate::container::{header_bytes, read_header, read_lane_table, CodecError, ContainerHeader};
use crate::hwpipe::{HwDecoder, HwEncoder};
use cbic_arith::{BinaryDecoder, BinaryEncoder, LaneDecoder, LaneEncoder, MAX_LANES};
use cbic_bitio::{BitSink, BitSource, StreamBitReader, StreamBitWriter};
use cbic_image::{Image, ImageView};
use std::io::{self, Read, Write};

/// The encoder's coding backend: a single coder flushing bits straight to
/// the transport (container v1/v2), or `N` interleaved lanes buffering
/// their substreams until [`StreamEncoder::finish`] can emit the v3
/// length table (substream lengths are only known at the end).
#[derive(Debug)]
enum EncBackend<W: Write> {
    Single(HwEncoder<BinaryEncoder<StreamBitWriter<W>>>),
    Lanes { hw: HwEncoder<LaneEncoder>, out: W },
}

/// Streaming encoder: consumes pixel rows, emits the standard `CBIC`
/// container incrementally into an [`io::Write`].
///
/// With one lane (the default), memory is bounded to the hardware model's
/// state (three line buffers, the context store, the estimator trees) plus
/// a 4 KiB output buffer — nothing scales with image height. With
/// [`Self::with_lanes`] ≥ 2 the per-lane substreams are buffered in memory
/// until [`Self::finish`], because the v3 container prefixes each
/// substream with its length; memory then scales with the compressed size.
#[derive(Debug)]
pub struct StreamEncoder<W: Write> {
    backend: EncBackend<W>,
    height: usize,
    rows_in: usize,
    header_len: usize,
}

/// What one finished [`StreamEncoder`] wrote — the streaming counterpart
/// of [`EncodeStats`](crate::EncodeStats), returned by
/// [`StreamEncoder::finish_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StreamEncodeStats {
    /// Exact entropy-coded payload bits, including every coder's flush
    /// tail (summed over all lanes, excluding byte-align padding and the
    /// v3 lane table) — matches
    /// [`EncodeStats::payload_bits`](crate::EncodeStats) for the same
    /// pixels and lane count.
    pub payload_bits: u64,
    /// Bytes following the fixed container header: the padded payload
    /// plus, for v3, the per-lane length table — the quantity `cbic info`
    /// reports as "payload".
    pub payload_bytes: u64,
    /// Total container bytes written (header + payload).
    pub container_bytes: u64,
}

impl<W: Write> StreamEncoder<W> {
    /// Writes the container header for a `width`×`height` 8-bit image and
    /// prepares the pixel pipeline.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header, and returns
    /// [`io::ErrorKind::InvalidInput`] for dimensions no decoder would
    /// accept — beyond the container's 2^28-pixel ceiling (or a `u32`
    /// header field) — so an hours-long encode cannot end in an
    /// undecodable container.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the configuration is invalid.
    pub fn new(out: W, width: usize, height: usize, cfg: &CodecConfig) -> io::Result<Self> {
        Self::with_depth(out, width, height, 8, cfg)
    }

    /// [`Self::new`] for an arbitrary 8–16-bit sample depth (the header
    /// gains the version-2 bit-depth field for depths other than 8).
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, the depth is outside `1..=16`,
    /// or the configuration is invalid.
    pub fn with_depth(
        out: W,
        width: usize,
        height: usize,
        bit_depth: u8,
        cfg: &CodecConfig,
    ) -> io::Result<Self> {
        Self::with_lanes(out, width, height, bit_depth, cfg, 1)
    }

    /// [`Self::with_depth`] over `lanes` interleaved coder lanes: for
    /// `lanes >= 2` the emitted container is version 3 (lane byte +
    /// length-prefixed substreams), byte-identical to
    /// [`compress_with_lanes`](crate::compress_with_lanes); `lanes == 1`
    /// keeps the v1/v2 single-stream format and the bounded-memory
    /// guarantee.
    ///
    /// # Errors
    ///
    /// As [`Self::new`].
    ///
    /// # Panics
    ///
    /// Additionally panics if `lanes` is zero or above
    /// [`MAX_LANES`].
    pub fn with_lanes(
        mut out: W,
        width: usize,
        height: usize,
        bit_depth: u8,
        cfg: &CodecConfig,
        lanes: usize,
    ) -> io::Result<Self> {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        crate::container::check_container_dimensions(width, height)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let (hdr, len) = header_bytes(cfg, width, height, bit_depth, lanes as u8);
        out.write_all(&hdr[..len])?;
        let backend = if lanes >= 2 {
            EncBackend::Lanes {
                hw: HwEncoder::with_coder(width, bit_depth, cfg, LaneEncoder::new(lanes)),
                out,
            }
        } else {
            EncBackend::Single(HwEncoder::with_sink(
                width,
                bit_depth,
                cfg,
                StreamBitWriter::new(out),
            ))
        };
        Ok(Self {
            backend,
            height,
            rows_in: 0,
            header_len: len,
        })
    }

    /// Row width this encoder expects.
    pub fn width(&self) -> usize {
        match &self.backend {
            EncBackend::Single(hw) => hw.width(),
            EncBackend::Lanes { hw, .. } => hw.width(),
        }
    }

    /// Total rows the header promised.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sample bit depth the header declared.
    pub fn bit_depth(&self) -> u8 {
        match &self.backend {
            EncBackend::Single(hw) => hw.bit_depth(),
            EncBackend::Lanes { hw, .. } => hw.bit_depth(),
        }
    }

    /// Number of interleaved coder lanes (1 = v1/v2 single stream).
    pub fn lanes(&self) -> usize {
        match &self.backend {
            EncBackend::Single(_) => 1,
            EncBackend::Lanes { hw, .. } => hw.coder().lane_count(),
        }
    }

    /// Rows consumed so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_in
    }

    /// Payload bits emitted so far (pre-padding, summed over all lanes) —
    /// the streaming equivalent of
    /// [`EncodeStats::payload_bits`](crate::EncodeStats). On a
    /// lane-striped encoder this drains the decisions buffered at the lane
    /// mux first, so the count is exact up to the decisions coded so far
    /// (it excludes only each coder's final flush tail, like the
    /// single-coder count; [`finish_with_stats`](Self::finish_with_stats)
    /// settles the exact total including the tails).
    pub fn payload_bits(&mut self) -> u64 {
        match &mut self.backend {
            EncBackend::Single(hw) => hw.sink().bits_written(),
            // `bits_flushed` alone would miss everything still buffered at
            // the mux — on a small image that is the *entire* payload
            // (the `compress --lanes N` "0.000 bpp" bug).
            EncBackend::Lanes { hw, .. } => hw.coder_mut().bits_written(),
        }
    }

    /// Encodes one raster row.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when a sample exceeds the declared
    /// bit depth (an oversized sample would silently wrap modulo the
    /// sample range and break losslessness — rejected before any of the
    /// row is coded), and any I/O error the underlying writer hit while
    /// this row's bits were flushed.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the encoder width or all
    /// `height` rows were already pushed.
    pub fn push_row(&mut self, row: &[u16]) -> io::Result<()> {
        assert_eq!(row.len(), self.width(), "row length mismatch");
        assert!(
            self.rows_in < self.height,
            "all {} rows already pushed",
            self.height
        );
        let max_val = crate::remap::half_for_depth(self.bit_depth()) as u32 * 2 - 1;
        if let Some(&bad) = row.iter().find(|&&p| u32::from(p) > max_val) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "sample {bad} exceeds the {}-bit maximum {max_val}",
                    self.bit_depth()
                ),
            ));
        }
        self.rows_in += 1;
        match &mut self.backend {
            EncBackend::Single(hw) => {
                for &pixel in row {
                    hw.push_pixel(pixel);
                }
                hw.sink_mut().take_error()
            }
            EncBackend::Lanes { hw, .. } => {
                // Lane substreams buffer in memory; no I/O until `finish`.
                for &pixel in row {
                    hw.push_pixel(pixel);
                }
                Ok(())
            }
        }
    }

    /// Flushes the arithmetic coder and the transport, returning the
    /// wrapped writer.
    ///
    /// # Errors
    ///
    /// Returns any latched or final I/O error.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `height` rows were pushed — finishing early
    /// would emit a container whose header lies about its pixel count.
    pub fn finish(self) -> io::Result<W> {
        Ok(self.finish_with_stats()?.0)
    }

    /// [`finish`](Self::finish) that also reports what was written: the
    /// exact payload bits (flush tails included) and the payload/container
    /// byte counts, so a caller reporting sizes — the CLI, a service —
    /// needs no second pass over the output. The byte counts match what
    /// `cbic info` derives from the container.
    ///
    /// # Errors
    ///
    /// As [`finish`](Self::finish).
    ///
    /// # Panics
    ///
    /// As [`finish`](Self::finish).
    pub fn finish_with_stats(self) -> io::Result<(W, StreamEncodeStats)> {
        assert_eq!(
            self.rows_in, self.height,
            "only {} of {} rows were pushed",
            self.rows_in, self.height
        );
        let header_len = self.header_len as u64;
        match self.backend {
            EncBackend::Single(hw) => {
                let mut writer = hw.finish_sink();
                writer.take_error()?;
                // The coder flush already ran, so this is the exact
                // pre-padding total; `finish` pads to the byte boundary.
                let payload_bits = writer.bits_written();
                let payload_bytes = payload_bits.div_ceil(8);
                let out = writer.finish()?;
                Ok((
                    out,
                    StreamEncodeStats {
                        payload_bits,
                        payload_bytes,
                        container_bytes: header_len + payload_bytes,
                    },
                ))
            }
            EncBackend::Lanes { hw, mut out } => {
                let (subs, payload_bits) = hw.into_coder().finish_with_bits();
                for sub in &subs {
                    let len = u32::try_from(sub.len()).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "lane substream exceeds the u32 length field",
                        )
                    })?;
                    out.write_all(&len.to_le_bytes())?;
                }
                for sub in &subs {
                    out.write_all(sub)?;
                }
                let payload_bytes =
                    (4 * subs.len() + subs.iter().map(Vec::len).sum::<usize>()) as u64;
                Ok((
                    out,
                    StreamEncodeStats {
                        payload_bits,
                        payload_bytes,
                        container_bytes: header_len + payload_bytes,
                    },
                ))
            }
        }
    }
}

/// The decoder's coding backend: a single coder pulling bits straight off
/// the transport (container v1/v2), or a lane demultiplexer over the v3
/// per-lane substreams, each slurped up front (their lengths bound the
/// reads) and decoded from memory.
#[derive(Debug)]
enum DecBackend<R: Read> {
    Single(HwDecoder<BinaryDecoder<StreamBitReader<R>>>),
    Lanes(HwDecoder<LaneDecoder<StreamBitReader<io::Cursor<Vec<u8>>>>>),
}

/// Streaming decoder: reads the standard `CBIC` container incrementally
/// from an [`io::Read`], producing reconstructed rows one at a time.
///
/// For v1/v2 containers the compressed stream is never slurped: bytes are
/// pulled through a 4 KiB refill buffer exactly as the arithmetic decoder
/// consumes them. A v3 (lane-interleaved) container instead reads its
/// length-prefixed substreams into memory up front — the lane muxing needs
/// random access across substreams, so memory scales with the compressed
/// size there.
#[derive(Debug)]
pub struct StreamDecoder<R: Read> {
    backend: DecBackend<R>,
    cfg: CodecConfig,
    width: usize,
    height: usize,
    bit_depth: u8,
    lanes: usize,
    rows_out: usize,
}

impl<R: Read> StreamDecoder<R> {
    /// Reads and validates the container header, preparing the pixel
    /// pipeline (for v3, this also reads the lane table and all
    /// substreams).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when the stream ends inside the header,
    /// lane table, or a promised substream, [`CodecError::Io`] on
    /// transport errors, and the usual header errors
    /// ([`CodecError::BadMagic`], invalid fields, …) otherwise.
    pub fn new(mut input: R) -> Result<Self, CodecError> {
        let hdr = read_header(&mut input)?;
        Self::with_header(hdr, input)
    }

    /// [`StreamDecoder::new`] for a source whose header was already
    /// consumed — the shared entry point of the dispatching callers
    /// ([`decompress_from`], the sessions), which must inspect the header
    /// before choosing a decoder.
    ///
    /// # Errors
    ///
    /// As [`StreamDecoder::new`]; a version-4 tiled container is
    /// [`CodecError::InvalidHeader`] here (its index wants random access,
    /// not row streaming) — route it to [`crate::grid`] instead.
    pub(crate) fn with_header(hdr: ContainerHeader, mut input: R) -> Result<Self, CodecError> {
        if hdr.tile.is_some() {
            return Err(CodecError::InvalidHeader(
                "version-4 tiled container: use the grid decoder".into(),
            ));
        }
        let lanes = usize::from(hdr.lanes);
        let backend = if lanes >= 2 {
            let lens = read_lane_table(&mut input, lanes)?;
            let mut sources = Vec::with_capacity(lanes);
            for &len in &lens {
                // `take` bounds each read by the declared length, so a
                // forged table cannot force an oversized allocation; a
                // short read is a truncated substream.
                let mut sub = Vec::new();
                (&mut input)
                    .take(u64::from(len))
                    .read_to_end(&mut sub)
                    .map_err(|e| CodecError::io(&e))?;
                if sub.len() != len as usize {
                    return Err(CodecError::Truncated);
                }
                sources.push(StreamBitReader::new(io::Cursor::new(sub)));
            }
            DecBackend::Lanes(HwDecoder::with_coder(
                LaneDecoder::new(sources),
                hdr.width,
                hdr.bit_depth,
                &hdr.cfg,
            ))
        } else {
            DecBackend::Single(HwDecoder::with_source(
                StreamBitReader::new(input),
                hdr.width,
                hdr.bit_depth,
                &hdr.cfg,
            ))
        };
        Ok(Self {
            backend,
            cfg: hdr.cfg,
            width: hdr.width,
            height: hdr.height,
            bit_depth: hdr.bit_depth,
            lanes,
            rows_out: 0,
        })
    }

    /// Number of interleaved coder lanes (1 for v1/v2 containers).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Image dimensions declared by the header.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Sample bit depth declared by the header.
    pub fn bit_depth(&self) -> u8 {
        self.bit_depth
    }

    /// Codec configuration carried by the header.
    pub fn config(&self) -> &CodecConfig {
        &self.cfg
    }

    /// Rows decoded so far.
    pub fn rows_decoded(&self) -> usize {
        self.rows_out
    }

    /// Decodes the next raster row into `buf`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Io`] if the transport failed mid-row, and
    /// [`CodecError::Truncated`] when — by the final row — the decoder had
    /// to invent more padding bits than any complete payload requires
    /// (i.e. the stream ended early and the tail rows are fabrication).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the image width or all rows were
    /// already decoded.
    pub fn next_row(&mut self, buf: &mut [u16]) -> Result<(), CodecError> {
        assert_eq!(buf.len(), self.width, "row buffer length mismatch");
        assert!(
            self.rows_out < self.height,
            "all {} rows already decoded",
            self.height
        );
        self.rows_out += 1;
        let last = self.rows_out == self.height;
        match &mut self.backend {
            DecBackend::Single(hw) => {
                for slot in buf.iter_mut() {
                    *slot = hw.next_pixel();
                }
                if let Some(e) = hw.source().io_error() {
                    return Err(CodecError::io(e));
                }
                if last && hw.source().padding_bits() > MAX_CODE_PADDING_BITS {
                    return Err(CodecError::Truncated);
                }
            }
            DecBackend::Lanes(hw) => {
                for slot in buf.iter_mut() {
                    *slot = hw.next_pixel();
                }
                // Substreams were length-checked up front, so the only
                // residual truncation signal is a lane overrunning into
                // padding.
                if last && hw.coder().max_padding_bits() > MAX_CODE_PADDING_BITS {
                    return Err(CodecError::Truncated);
                }
            }
        }
        Ok(())
    }

    /// Decodes every remaining row into a full [`Image`] (convenience for
    /// callers that want the bounded-memory transport but a materialized
    /// result).
    ///
    /// # Errors
    ///
    /// As [`Self::next_row`].
    pub fn decode_all(mut self) -> Result<Image, CodecError> {
        let mut img = Image::with_depth(self.width, self.height, self.bit_depth);
        let mut row = vec![0u16; self.width];
        for y in self.rows_out..self.height {
            self.next_row(&mut row)?;
            img.row_mut(y).copy_from_slice(&row);
        }
        Ok(img)
    }
}

/// Streams the pixels of `img` into `out` as a standard container,
/// byte-identical to [`compress`](crate::compress) but without
/// materializing the output.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn compress_to<W: Write>(img: ImageView<'_>, cfg: &CodecConfig, out: W) -> io::Result<W> {
    let mut enc = StreamEncoder::with_depth(out, img.width(), img.height(), img.bit_depth(), cfg)?;
    for row in img.rows() {
        enc.push_row(row)?;
    }
    enc.finish()
}

/// Decodes a standard container from `input` without slurping it.
///
/// # Errors
///
/// As [`StreamDecoder::new`] and [`StreamDecoder::next_row`]. A
/// version-4 tiled container is routed to the grid decoder
/// (sequentially — pass a [`Parallelism`](cbic_image::Parallelism) via
/// [`grid::decompress_grid`](crate::grid::decompress_grid) to decode its
/// tiles in parallel).
pub fn decompress_from<R: Read>(mut input: R) -> Result<Image, CodecError> {
    let hdr = read_header(&mut input)?;
    if hdr.tile.is_some() {
        return crate::grid::decode_grid_after_header(
            &hdr,
            &mut input,
            cbic_image::Parallelism::Sequential,
        );
    }
    StreamDecoder::with_header(hdr, input)?.decode_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{compress, HEADER_LEN};
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn streaming_output_is_byte_identical_to_buffered() {
        let cfg = CodecConfig::default();
        for (name, img) in cbic_image::corpus::generate(48) {
            let buffered = compress(img.view(), &cfg);
            let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
            assert_eq!(streamed, buffered, "{name:?}");
        }
    }

    #[test]
    fn streaming_roundtrip_edge_shapes() {
        let cfg = CodecConfig::default();
        for (w, h) in [(1, 1), (1, 17), (17, 1), (3, 5), (64, 2)] {
            let img = Image::from_fn(w, h, |x, y| (x * 41 + y * 13) as u8);
            let bytes = compress_to(img.view(), &cfg, Vec::new()).unwrap();
            assert_eq!(decompress_from(&bytes[..]).unwrap(), img, "{w}x{h}");
        }
    }

    #[test]
    fn sixteen_bit_streams_roundtrip_and_match_buffered() {
        let cfg = CodecConfig::default();
        for depth in [10u8, 12, 16] {
            let img = Image::from_fn16(24, 18, depth, |x, y| {
                ((x as u32 * 331 + y as u32 * 911) % (1u32 << depth.min(15))) as u16
            });
            let buffered = compress(img.view(), &cfg);
            let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
            assert_eq!(streamed, buffered, "depth {depth}");
            let back = decompress_from(&streamed[..]).unwrap();
            assert_eq!(back, img, "depth {depth}");
            assert_eq!(back.bit_depth(), depth);
        }
    }

    #[test]
    fn decoder_reads_buffered_streams_and_vice_versa() {
        let img = CorpusImage::Goldhill.generate(40, 40);
        let cfg = CodecConfig {
            texture_bits: 3,
            ..CodecConfig::default()
        };
        let buffered = compress(img.view(), &cfg);
        // Streaming decoder on buffered bytes.
        assert_eq!(decompress_from(&buffered[..]).unwrap(), img);
        // Buffered decoder on streamed bytes.
        let streamed = compress_to(img.view(), &cfg, Vec::new()).unwrap();
        assert_eq!(crate::container::decompress(&streamed).unwrap(), img);
    }

    #[test]
    fn decoder_carries_header_config() {
        let img = CorpusImage::Zelda.generate(16, 16);
        let cfg = CodecConfig {
            error_feedback: false,
            ..CodecConfig::default()
        };
        let bytes = compress_to(img.view(), &cfg, Vec::new()).unwrap();
        let dec = StreamDecoder::new(&bytes[..]).unwrap();
        assert_eq!(dec.dimensions(), (16, 16));
        assert_eq!(dec.bit_depth(), 8);
        assert_eq!(dec.config(), &cfg);
    }

    #[test]
    fn truncated_header_errors() {
        let img = CorpusImage::Boat.generate(16, 16);
        let bytes = compress(img.view(), &CodecConfig::default());
        for cut in [0, 4, HEADER_LEN - 1] {
            assert!(
                matches!(
                    StreamDecoder::new(&bytes[..cut]).err(),
                    Some(CodecError::Truncated)
                ),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn truncated_payload_errors_not_panics() {
        let img = CorpusImage::Barb.generate(48, 48);
        let bytes = compress(img.view(), &CodecConfig::default());
        assert!(bytes.len() > HEADER_LEN + 64, "test needs a real payload");
        let cut = &bytes[..bytes.len() / 2];
        assert_eq!(
            decompress_from(cut).err(),
            Some(CodecError::Truncated),
            "mid-payload EOF must surface as Truncated"
        );
    }

    #[test]
    fn flipped_magic_errors() {
        let img = CorpusImage::Boat.generate(16, 16);
        let mut bytes = compress(img.view(), &CodecConfig::default());
        bytes[0] ^= 0xFF;
        assert_eq!(
            StreamDecoder::new(&bytes[..]).err(),
            Some(CodecError::BadMagic)
        );
    }

    #[test]
    fn io_error_mid_stream_surfaces() {
        struct FailAfter(Vec<u8>, usize);
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Err(io::Error::other("link dropped"));
                }
                let n = buf.len().min(self.0.len() - self.1).min(16);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        let img = CorpusImage::Lena.generate(64, 64);
        let bytes = compress(img.view(), &CodecConfig::default());
        let half = bytes.len() / 2;
        let result = decompress_from(FailAfter(bytes[..half].to_vec(), 0));
        assert!(matches!(result, Err(CodecError::Io(..))), "got {result:?}");
    }

    #[test]
    fn push_row_rejects_samples_beyond_the_depth() {
        let mut enc =
            StreamEncoder::with_depth(Vec::new(), 4, 2, 10, &CodecConfig::default()).unwrap();
        let err = enc.push_row(&[0, 1023, 1024, 0]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(enc.rows_pushed(), 0, "nothing of the bad row was coded");
        // A legal row still encodes afterwards.
        enc.push_row(&[0, 1023, 1, 2]).unwrap();
        assert_eq!(enc.rows_pushed(), 1);
    }

    #[test]
    #[should_panic(expected = "rows were pushed")]
    fn finishing_early_panics() {
        let enc = StreamEncoder::new(Vec::new(), 4, 4, &CodecConfig::default()).unwrap();
        let _ = enc.finish();
    }

    #[test]
    fn payload_bits_match_buffered_stats() {
        let img = CorpusImage::Peppers.generate(32, 32);
        let cfg = CodecConfig::default();
        let (_, stats) = crate::codec::encode_raw(img.view(), &cfg);
        let mut enc = StreamEncoder::new(Vec::new(), 32, 32, &cfg).unwrap();
        for y in 0..32 {
            enc.push_row(img.row(y)).unwrap();
        }
        // The final coder flush adds a few bits after the last row, so the
        // running count must be within the flush slack of the exact total.
        assert!(enc.payload_bits() <= stats.payload_bits);
        assert!(enc.payload_bits() + 64 > stats.payload_bits);
    }
}
