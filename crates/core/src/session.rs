//! Reusable coding sessions: the session, not the call, is the unit of
//! work.
//!
//! [`compress`](crate::compress) / [`decompress`](crate::decompress)
//! rebuild the whole model per call — the 512-cell context store (plus its
//! 1 KB division LUT), eight 255-node estimator trees, and the line-error
//! buffer — which is wasted work for a service coding thousands of images
//! back to back. [`EncoderSession`] and [`DecoderSession`] own that state
//! across calls and *reset* it in place between images, eliminating the
//! model-table allocations and LUT rebuilds from the hot path (what
//! remains per call is the arithmetic coder's registers and a 4 KiB
//! transport buffer). Images of different bit depths may be mixed freely;
//! the estimator banks are rebuilt only when the depth actually changes.
//!
//! A reset model is byte-identical to a fresh one (asserted below and by
//! the `session_reuse` differential tests), so sessions are a pure
//! performance feature: same containers in, same containers out. The
//! `session_reuse` criterion group quantifies the win.
//!
//! # Examples
//!
//! ```
//! use cbic_core::session::EncoderSession;
//! use cbic_core::CodecConfig;
//! use cbic_image::corpus::CorpusImage;
//!
//! let cfg = CodecConfig::default();
//! let mut session = EncoderSession::new(&cfg);
//! let mut out = Vec::new();
//! for size in [16, 24, 32] {
//!     let img = CorpusImage::Lena.generate(size, size);
//!     out.clear();
//!     let stats = session.encode(img.view(), &mut out)?;
//!     assert_eq!(out, cbic_core::compress(img.view(), &cfg)); // byte-identical
//!     assert_eq!(stats.pixels, (size * size) as u64);
//! }
//! # Ok::<(), cbic_image::CbicError>(())
//! ```

use crate::codec::{CodecConfig, EncodeStats, MAX_CODE_PADDING_BITS};
use crate::container::{
    check_container_dimensions, header_bytes, read_header, read_lane_table, CodecError,
};
use crate::engine::{DecoderState, EncoderState};
use cbic_arith::{
    BinaryDecoder, BinaryEncoder, DecisionEncoder, LaneDecoder, LaneEncoder, MAX_LANES,
};
use cbic_bitio::{BitReader, BitSink, BitSource, StreamBitReader, StreamBitWriter};
use cbic_image::{CbicError, Image, ImageView};
use std::io::{self, Read, Write};

/// A reusable encoder: owns the context store, estimator trees, and error
/// buffers across [`encode`](Self::encode) calls.
///
/// Every call emits a standard `CBIC` container byte-identical to
/// [`compress`](crate::compress) with the session's configuration; between
/// calls the model state is reset in place instead of reallocated (and
/// rebuilt only when the sample depth changes).
///
/// # Examples
///
/// ```
/// use cbic_core::session::EncoderSession;
/// use cbic_core::CodecConfig;
/// use cbic_image::Image;
///
/// let mut session = EncoderSession::new(&CodecConfig::default());
/// let img = Image::from_fn(16, 16, |x, y| (x * y) as u8);
/// let mut out = Vec::new();
/// session.encode(img.view(), &mut out)?;
/// assert_eq!(cbic_core::decompress(&out).unwrap(), img);
/// # Ok::<(), cbic_image::CbicError>(())
/// ```
#[derive(Debug)]
pub struct EncoderSession {
    cfg: CodecConfig,
    state: EncoderState,
    lanes: usize,
}

impl EncoderSession {
    /// Creates a session for `cfg`, allocating the engine state once
    /// (sized for 8-bit samples; a deeper first image re-arms it).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CodecConfig`]).
    pub fn new(cfg: &CodecConfig) -> Self {
        Self::with_lanes(cfg, 1)
    }

    /// [`Self::new`] with every container coded over `lanes` interleaved
    /// coder lanes — version-3 containers for `lanes ≥ 2`, byte-identical
    /// to [`compress_with_lanes`](crate::compress_with_lanes).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `lanes` is zero or above
    /// [`MAX_LANES`].
    pub fn with_lanes(cfg: &CodecConfig, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        Self {
            cfg: *cfg,
            state: EncoderState::new(1, 8, cfg),
            lanes,
        }
    }

    /// The configuration every container of this session carries.
    pub fn config(&self) -> &CodecConfig {
        &self.cfg
    }

    /// Number of interleaved coder lanes per container (1 = v1/v2).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Changes the lane count for subsequent [`encode`](Self::encode)
    /// calls without rebuilding the model state — the lane count only
    /// selects the entropy-stage packing, never the model, so a long-lived
    /// worker (e.g. a `cbic-server` shard) can honor per-request lane
    /// options on one session.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or above [`MAX_LANES`].
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} outside 1..={MAX_LANES}"
        );
        self.lanes = lanes;
    }

    /// Encodes the pixels of `img` into a standard container written to
    /// `sink`, byte-identical to [`compress`](crate::compress).
    ///
    /// # Errors
    ///
    /// [`CbicError::Io`] on sink failures (kind preserved) and
    /// [`CbicError::InvalidContainer`] for dimensions beyond the
    /// container's 2^28-pixel ceiling.
    pub fn encode(
        &mut self,
        img: ImageView<'_>,
        sink: &mut dyn Write,
    ) -> Result<EncodeStats, CbicError> {
        let (width, height) = img.dimensions();
        check_container_dimensions(width, height).map_err(CbicError::from)?;
        self.state.reset(width, img.bit_depth());

        let (hdr, len) = header_bytes(&self.cfg, width, height, img.bit_depth(), self.lanes as u8);
        sink.write_all(&hdr[..len]).map_err(CbicError::from)?;

        if self.lanes >= 2 {
            // Lane substreams must be buffered until their lengths are
            // known, so this path materializes the payload before writing
            // the v3 length table — same bytes as `compress_with_lanes`.
            let mut enc = LaneEncoder::new(self.lanes);
            self.state.encode_view(img, &mut enc);
            let decisions = enc.decisions();
            let coded_decisions = enc.coded_decisions();
            // Flush tails count, matching the single-coder path below
            // (which reads `bits_written` after the coder's `finish`).
            let (subs, payload_bits) = enc.finish_with_bits();
            for sub in &subs {
                sink.write_all(&(sub.len() as u32).to_le_bytes())
                    .map_err(CbicError::from)?;
            }
            for sub in &subs {
                sink.write_all(sub).map_err(CbicError::from)?;
            }
            let coder_stats = self.state.coder_stats();
            return Ok(EncodeStats {
                pixels: (width * height) as u64,
                payload_bits,
                escapes: coder_stats.escapes,
                estimator_rescales: coder_stats.rescales,
                context_halvings: self.state.halvings(),
                decisions,
                coded_decisions,
            });
        }

        let mut enc = BinaryEncoder::new(StreamBitWriter::new(sink));
        self.state.encode_view(img, &mut enc);
        let decisions = enc.decisions();
        let coded_decisions = enc.coded_decisions();
        let mut writer = enc.finish();
        writer.take_error().map_err(CbicError::from)?;
        let payload_bits = writer.bits_written();
        writer.finish().map_err(CbicError::from)?;

        let coder_stats = self.state.coder_stats();
        Ok(EncodeStats {
            pixels: (width * height) as u64,
            payload_bits,
            escapes: coder_stats.escapes,
            estimator_rescales: coder_stats.rescales,
            context_halvings: self.state.halvings(),
            decisions,
            coded_decisions,
        })
    }
}

/// A reusable decoder: the dual of [`EncoderSession`].
///
/// Each [`decode`](Self::decode) call decodes one standard `CBIC`
/// container from the source. The session keeps the model state of the
/// most recent configuration; when consecutive containers carry the same
/// configuration and depth (the common case for a service fed by one
/// encoder) the state is reset in place, otherwise it is rebuilt.
///
/// The container format carries no payload length, so the decoder's
/// buffered transport may read past the container's last byte — hand each
/// call a source delivering exactly one container (a file, a
/// length-delimited slice of a larger stream), not a raw concatenation of
/// containers.
///
/// # Examples
///
/// ```
/// use cbic_core::session::{DecoderSession, EncoderSession};
/// use cbic_core::CodecConfig;
/// use cbic_image::Image;
///
/// let mut enc = EncoderSession::new(&CodecConfig::default());
/// let mut dec = DecoderSession::new();
/// for seed in 0..3u8 {
///     let img = Image::from_fn(12, 12, |x, y| (x * 7 + y) as u8 ^ seed);
///     let mut bytes = Vec::new();
///     enc.encode(img.view(), &mut bytes)?;
///     assert_eq!(dec.decode(&mut &bytes[..])?, img);
/// }
/// # Ok::<(), cbic_image::CbicError>(())
/// ```
#[derive(Debug, Default)]
pub struct DecoderSession {
    state: Option<(CodecConfig, DecoderState)>,
}

impl DecoderSession {
    /// Creates an empty session; model state is built on first use from
    /// the first container's header.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one container from `source` and decodes it.
    ///
    /// # Errors
    ///
    /// [`CbicError::Truncated`] when the stream ends inside the header or
    /// the payload, [`CbicError::Io`] on transport failures (kind
    /// preserved), and the structured header errors otherwise.
    pub fn decode(&mut self, source: &mut dyn Read) -> Result<Image, CbicError> {
        let hdr = read_header(source).map_err(CbicError::from)?;

        if hdr.tile.is_some() {
            // A version-4 grid container: the tile index wants random
            // access, not the session's row-streaming state, so hand it
            // to the grid decoder (sequential — the session is the
            // latency-oriented path).
            return crate::grid::decode_grid_after_header(
                &hdr,
                source,
                cbic_image::Parallelism::Sequential,
            )
            .map_err(CbicError::from);
        }

        let state = match &mut self.state {
            Some((held, state)) if *held == hdr.cfg => {
                state.reset(hdr.width, hdr.bit_depth);
                state
            }
            state => {
                let fresh = (
                    hdr.cfg,
                    DecoderState::new(hdr.width, hdr.bit_depth, &hdr.cfg),
                );
                &mut state.insert(fresh).1
            }
        };

        let mut img = Image::with_depth(hdr.width, hdr.height, hdr.bit_depth);

        if hdr.lanes >= 2 {
            let lens = read_lane_table(source, usize::from(hdr.lanes)).map_err(CbicError::from)?;
            let mut subs = Vec::with_capacity(lens.len());
            for &len in &lens {
                // `take` bounds each read by the declared length, so a
                // forged table cannot force an oversized allocation.
                let mut sub = Vec::new();
                (&mut *source)
                    .take(u64::from(len))
                    .read_to_end(&mut sub)
                    .map_err(CbicError::from)?;
                if sub.len() != len as usize {
                    return Err(CodecError::Truncated.into());
                }
                subs.push(sub);
            }
            let sources = subs.iter().map(|s| BitReader::new(s)).collect();
            let mut dec = LaneDecoder::new(sources);
            state.decode_into(&mut dec, &mut img.view_mut());
            if dec.max_padding_bits() > MAX_CODE_PADDING_BITS {
                return Err(CodecError::Truncated.into());
            }
            return Ok(img);
        }

        let mut dec = BinaryDecoder::new(StreamBitReader::new(source));
        state.decode_into(&mut dec, &mut img.view_mut());
        if let Some(e) = dec.source().io_error() {
            // From<io::Error> normalizes UnexpectedEof to Truncated, the
            // same as every other decode path.
            return Err(CbicError::from(io::Error::new(e.kind(), e.to_string())));
        }
        if dec.source().padding_bits() > MAX_CODE_PADDING_BITS {
            return Err(CodecError::Truncated.into());
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::compress;
    use cbic_arith::EstimatorConfig;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn reused_session_is_byte_identical_to_fresh_compress() {
        let cfg = CodecConfig::default();
        let mut session = EncoderSession::new(&cfg);
        let mut out = Vec::new();
        // Varying content, sizes, and widths across one session.
        for (i, (_, img)) in cbic_image::corpus::generate(40).into_iter().enumerate() {
            out.clear();
            let stats = session.encode(img.view(), &mut out).unwrap();
            let reference = compress(img.view(), &cfg);
            assert_eq!(out, reference, "image {i} diverged after reuse");
            let (_, ref_stats) = crate::codec::encode_raw(img.view(), &cfg);
            assert_eq!(stats, ref_stats, "stats diverged on image {i}");
        }
    }

    #[test]
    fn session_resizes_between_widths() {
        let cfg = CodecConfig::default();
        let mut session = EncoderSession::new(&cfg);
        for (w, h) in [(1, 1), (64, 2), (2, 64), (17, 5), (1, 40)] {
            let img = Image::from_fn(w, h, |x, y| (x * 31 + y * 17) as u8);
            let mut out = Vec::new();
            session.encode(img.view(), &mut out).unwrap();
            assert_eq!(out, compress(img.view(), &cfg), "{w}x{h}");
        }
    }

    #[test]
    fn session_switches_between_depths() {
        let cfg = CodecConfig::default();
        let mut enc = EncoderSession::new(&cfg);
        let mut dec = DecoderSession::new();
        for depth in [8u8, 12, 8, 16, 10] {
            let img = Image::from_fn16(20, 14, depth, |x, y| {
                ((x * 19 + y * 7) as u32 % (1u32 << depth.min(15))) as u16
            });
            let mut out = Vec::new();
            let stats = enc.encode(img.view(), &mut out).unwrap();
            assert_eq!(out, compress(img.view(), &cfg), "depth {depth}");
            assert_eq!(stats.pixels, 20 * 14);
            let back = dec.decode(&mut &out[..]).unwrap();
            assert_eq!(back, img, "depth {depth}");
            assert_eq!(back.bit_depth(), depth);
        }
    }

    #[test]
    fn decoder_session_roundtrips_and_reuses_state() {
        let cfg = CodecConfig::default();
        let mut enc = EncoderSession::new(&cfg);
        let mut dec = DecoderSession::new();
        for (_, img) in cbic_image::corpus::generate(32) {
            let mut bytes = Vec::new();
            enc.encode(img.view(), &mut bytes).unwrap();
            assert_eq!(dec.decode(&mut &bytes[..]).unwrap(), img);
        }
    }

    #[test]
    fn decoder_session_rebuilds_on_config_change() {
        let img = CorpusImage::Barb.generate(24, 24);
        let mut dec = DecoderSession::new();
        for cfg in [
            CodecConfig::default(),
            CodecConfig {
                texture_bits: 2,
                ..CodecConfig::default()
            },
            CodecConfig {
                estimator: EstimatorConfig {
                    count_bits: 12,
                    ..EstimatorConfig::default()
                },
                ..CodecConfig::default()
            },
            CodecConfig::default(),
        ] {
            let bytes = compress(img.view(), &cfg);
            assert_eq!(dec.decode(&mut &bytes[..]).unwrap(), img, "{cfg:?}");
        }
    }

    #[test]
    fn session_rejects_oversized_dimensions() {
        let mut session = EncoderSession::new(&CodecConfig::default());
        let img = Image::from_fn(1 << 15, 1, |x, _| x as u8);
        // 2^15 x 1 is fine...
        assert!(session.encode(img.view(), &mut Vec::new()).is_ok());
        // ...but the shared container gate rejects 2^30 pixels, and the
        // session surfaces it as the structured variant.
        assert!(matches!(
            check_container_dimensions(1 << 15, 1 << 15).map_err(CbicError::from),
            Err(CbicError::InvalidContainer(_))
        ));
    }

    #[test]
    fn decoder_session_surfaces_truncation() {
        let cfg = CodecConfig::default();
        let img = CorpusImage::Goldhill.generate(48, 48);
        let bytes = compress(img.view(), &cfg);
        let mut dec = DecoderSession::new();
        let err = dec.decode(&mut &bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, CbicError::Truncated), "{err:?}");
        assert_eq!(err.io_kind(), Some(io::ErrorKind::UnexpectedEof));
        // The session stays usable after an error.
        assert_eq!(dec.decode(&mut &bytes[..]).unwrap(), img);
    }

    #[test]
    fn encoder_session_surfaces_sink_errors_with_kind() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut session = EncoderSession::new(&CodecConfig::default());
        let img = Image::from_fn(8, 8, |x, y| (x + y) as u8);
        let err = session.encode(img.view(), &mut Failing).unwrap_err();
        assert_eq!(err.io_kind(), Some(io::ErrorKind::BrokenPipe));
    }
}
