//! The 7-pixel causal neighbourhood of Fig. 2 and its boundary rules.
//!
//! ```text
//!        NN  NNE
//!    NW  N   NE
//! WW W   X
//! ```
//!
//! In hardware these values come from the 3 rotating line buffers; here
//! they are fetched from the causal part of the image (original on the
//! encoder side, reconstruction on the decoder side — identical for a
//! lossless codec). Missing neighbours outside the image replicate the
//! nearest available causal pixel, and the very first pixel falls back to
//! mid-gray (`2^(n-1)` at an `n`-bit depth, i.e. 128 for 8-bit); both
//! sides apply the same rules, so no side information is needed.
//!
//! The hot-path constructor is [`Neighborhood::from_rows`], which reads
//! straight from the three row slices a raster-order codec already holds —
//! no per-pixel coordinate arithmetic, no bounds re-checks per neighbour.
//! [`Neighborhood::fetch`] is the random-access convenience over an
//! [`ImageView`].

use cbic_image::ImageView;

/// The seven causal neighbours of the current pixel, in the paper's
/// notation (Fig. 2). Samples are `u16` so 8–16-bit depths share one type.
///
/// # Examples
///
/// ```
/// use cbic_core::neighborhood::Neighborhood;
/// use cbic_image::Image;
///
/// let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8);
/// let n = Neighborhood::fetch(&img.view(), 2, 2);
/// assert_eq!(n.w, img.get(1, 2));
/// assert_eq!(n.nne, img.get(3, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighborhood {
    /// West: `(x-1, y)`.
    pub w: u16,
    /// West-west: `(x-2, y)`.
    pub ww: u16,
    /// North: `(x, y-1)`.
    pub n: u16,
    /// North-north: `(x, y-2)`.
    pub nn: u16,
    /// North-east: `(x+1, y-1)`.
    pub ne: u16,
    /// North-west: `(x-1, y-1)`.
    pub nw: u16,
    /// North-north-east: `(x+1, y-2)`.
    pub nne: u16,
}

impl Neighborhood {
    /// Builds the neighbourhood of column `x` from the three row slices a
    /// raster-order codec holds: `cur` (the row being coded, causal up to
    /// `x`), `n1` (one row up, `None` on the first row), and `n2` (two rows
    /// up, `None` on the first two rows), applying the boundary replication
    /// rules of the [module documentation](self). `mid` is the first-pixel
    /// fallback (`2^(n-1)`).
    ///
    /// This is the row-slice fast path: one bounds-checked index per
    /// neighbour, no `y * stride` multiplications.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `x` is outside the rows.
    #[inline]
    pub fn from_rows(
        cur: &[u16],
        n1: Option<&[u16]>,
        n2: Option<&[u16]>,
        x: usize,
        mid: u16,
    ) -> Self {
        let width = cur.len();
        let w = if x >= 1 {
            cur[x - 1]
        } else if let Some(n1) = n1 {
            n1[x]
        } else {
            mid
        };
        let ww = if x >= 2 { cur[x - 2] } else { w };
        let n = n1.map_or(w, |n1| n1[x]);
        let nn = n2.map_or(n, |n2| n2[x]);
        let nw = match n1 {
            Some(n1) if x >= 1 => n1[x - 1],
            _ => n,
        };
        let ne = match n1 {
            Some(n1) if x + 1 < width => n1[x + 1],
            _ => n,
        };
        let nne = match n2 {
            Some(n2) if x + 1 < width => n2[x + 1],
            _ => ne,
        };
        Self {
            w,
            ww,
            n,
            nn,
            ne,
            nw,
            nne,
        }
    }

    /// Fetches the neighbourhood of `(x, y)` from the causal region of
    /// `img` — the random-access convenience over [`Self::from_rows`].
    ///
    /// Only pixels *before* `(x, y)` in raster order are read, so this is
    /// safe to call on a partially reconstructed image during decoding.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the view.
    pub fn fetch(img: &ImageView<'_>, x: usize, y: usize) -> Self {
        let (width, height) = img.dimensions();
        assert!(x < width && y < height, "pixel out of bounds");
        let cur = img.row(y);
        let n1 = (y >= 1).then(|| img.row(y - 1));
        let n2 = (y >= 2).then(|| img.row(y - 2));
        let mid = (u32::from(img.max_val()).div_ceil(2)) as u16;
        Self::from_rows(cur, n1, n2, x, mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::Image;

    fn img4() -> Image {
        // 0  1  2  3
        // 4  5  6  7
        // 8  9 10 11
        //12 13 14 15
        Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8)
    }

    fn fetch(img: &Image, x: usize, y: usize) -> Neighborhood {
        Neighborhood::fetch(&img.view(), x, y)
    }

    #[test]
    fn interior_pixel_reads_all_seven() {
        let n = fetch(&img4(), 2, 2);
        assert_eq!(
            n,
            Neighborhood {
                w: 9,
                ww: 8,
                n: 6,
                nn: 2,
                ne: 7,
                nw: 5,
                nne: 3,
            }
        );
    }

    #[test]
    fn origin_is_all_midgray() {
        let n = fetch(&img4(), 0, 0);
        assert_eq!(
            n,
            Neighborhood {
                w: 128,
                ww: 128,
                n: 128,
                nn: 128,
                ne: 128,
                nw: 128,
                nne: 128,
            }
        );
    }

    #[test]
    fn sixteen_bit_origin_uses_scaled_midgray() {
        let img = Image::from_fn16(2, 2, 16, |x, y| (x * 1000 + y) as u16);
        let n = Neighborhood::fetch(&img.view(), 0, 0);
        assert_eq!(n.w, 32768);
        assert_eq!(n.nne, 32768);
    }

    #[test]
    fn first_row_replicates_west() {
        let n = fetch(&img4(), 2, 0);
        assert_eq!(n.w, 1);
        assert_eq!(n.ww, 0);
        // No row above: N, NN, NE, NW, NNE all collapse to W.
        assert_eq!(n.n, 1);
        assert_eq!(n.nn, 1);
        assert_eq!(n.ne, 1);
        assert_eq!(n.nw, 1);
        assert_eq!(n.nne, 1);
    }

    #[test]
    fn first_column_replicates_north() {
        let n = fetch(&img4(), 0, 2);
        assert_eq!(n.n, 4);
        assert_eq!(n.w, 4, "W falls back to N in column 0");
        assert_eq!(n.ww, 4);
        assert_eq!(n.nw, 4);
        assert_eq!(n.nn, 0);
        assert_eq!(n.ne, 5);
        assert_eq!(n.nne, 1);
    }

    #[test]
    fn last_column_replicates_ne() {
        let n = fetch(&img4(), 3, 2);
        assert_eq!(n.ne, 7, "NE off the right edge falls back to N");
        assert_eq!(n.n, 7);
        assert_eq!(n.nne, 7, "NNE follows NE's fallback");
    }

    #[test]
    fn second_row_has_no_nn() {
        let n = fetch(&img4(), 1, 1);
        assert_eq!(n.nn, 1, "NN falls back to N");
        assert_eq!(n.nne, 2, "NNE falls back to NE");
    }

    #[test]
    fn only_causal_pixels_are_read() {
        // Build two images identical in the causal prefix of (2,2) but
        // different after it; the neighbourhoods must match.
        let a = img4();
        let mut b = img4();
        b.set(3, 2, 99);
        b.set(0, 3, 77);
        assert_eq!(fetch(&a, 2, 2), fetch(&b, 2, 2));
    }

    #[test]
    fn from_rows_agrees_with_fetch_everywhere() {
        let img = img4();
        let v = img.view();
        for y in 0..4 {
            let cur = v.row(y);
            let n1 = (y >= 1).then(|| v.row(y - 1));
            let n2 = (y >= 2).then(|| v.row(y - 2));
            for x in 0..4 {
                assert_eq!(
                    Neighborhood::from_rows(cur, n1, n2, x, 128),
                    fetch(&img, x, y),
                    "at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn strided_views_fetch_like_owned_copies() {
        let img = Image::from_fn(8, 8, |x, y| (x * 31 + y * 7) as u8);
        let window = img.view().crop(2, 3, 5, 4);
        let copy = window.to_image();
        for y in 0..4 {
            for x in 0..5 {
                assert_eq!(
                    Neighborhood::fetch(&window, x, y),
                    Neighborhood::fetch(&copy.view(), x, y),
                    "at ({x},{y})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let _ = fetch(&img4(), 4, 0);
    }
}
