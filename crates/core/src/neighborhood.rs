//! The 7-pixel causal neighbourhood of Fig. 2 and its boundary rules.
//!
//! ```text
//!        NN  NNE
//!    NW  N   NE
//! WW W   X
//! ```
//!
//! In hardware these values come from the 3 rotating line buffers; here
//! they are fetched from the causal part of the image (original on the
//! encoder side, reconstruction on the decoder side — identical for a
//! lossless codec). Missing neighbours outside the image replicate the
//! nearest available causal pixel, and the very first pixel falls back to
//! mid-gray (128); both sides apply the same rules, so no side information
//! is needed.

use cbic_image::Image;

/// The seven causal neighbours of the current pixel, in the paper's
/// notation (Fig. 2).
///
/// # Examples
///
/// ```
/// use cbic_core::neighborhood::Neighborhood;
/// use cbic_image::Image;
///
/// let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8);
/// let n = Neighborhood::fetch(&img, 2, 2);
/// assert_eq!(n.w, img.get(1, 2));
/// assert_eq!(n.nne, img.get(3, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighborhood {
    /// West: `(x-1, y)`.
    pub w: u8,
    /// West-west: `(x-2, y)`.
    pub ww: u8,
    /// North: `(x, y-1)`.
    pub n: u8,
    /// North-north: `(x, y-2)`.
    pub nn: u8,
    /// North-east: `(x+1, y-1)`.
    pub ne: u8,
    /// North-west: `(x-1, y-1)`.
    pub nw: u8,
    /// North-north-east: `(x+1, y-2)`.
    pub nne: u8,
}

impl Neighborhood {
    /// Fetches the neighbourhood of `(x, y)` from the causal region of
    /// `img`, applying the boundary replication rules described in the
    /// [module documentation](self).
    ///
    /// Only pixels *before* `(x, y)` in raster order are read, so this is
    /// safe to call on a partially reconstructed image during decoding.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the image.
    pub fn fetch(img: &Image, x: usize, y: usize) -> Self {
        let (width, height) = img.dimensions();
        assert!(x < width && y < height, "pixel out of bounds");
        // Fallback chain: W ← N ← 128 for the origin.
        let w = if x >= 1 {
            img.get(x - 1, y)
        } else if y >= 1 {
            img.get(x, y - 1)
        } else {
            128
        };
        let ww = if x >= 2 { img.get(x - 2, y) } else { w };
        let n = if y >= 1 { img.get(x, y - 1) } else { w };
        let nn = if y >= 2 { img.get(x, y - 2) } else { n };
        let nw = if x >= 1 && y >= 1 {
            img.get(x - 1, y - 1)
        } else {
            n
        };
        let ne = if x + 1 < width && y >= 1 {
            img.get(x + 1, y - 1)
        } else {
            n
        };
        let nne = if x + 1 < width && y >= 2 {
            img.get(x + 1, y - 2)
        } else {
            ne
        };
        Self {
            w,
            ww,
            n,
            nn,
            ne,
            nw,
            nne,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img4() -> Image {
        // 0  1  2  3
        // 4  5  6  7
        // 8  9 10 11
        //12 13 14 15
        Image::from_fn(4, 4, |x, y| (y * 4 + x) as u8)
    }

    #[test]
    fn interior_pixel_reads_all_seven() {
        let n = Neighborhood::fetch(&img4(), 2, 2);
        assert_eq!(
            n,
            Neighborhood {
                w: 9,
                ww: 8,
                n: 6,
                nn: 2,
                ne: 7,
                nw: 5,
                nne: 3,
            }
        );
    }

    #[test]
    fn origin_is_all_midgray() {
        let n = Neighborhood::fetch(&img4(), 0, 0);
        assert_eq!(
            n,
            Neighborhood {
                w: 128,
                ww: 128,
                n: 128,
                nn: 128,
                ne: 128,
                nw: 128,
                nne: 128,
            }
        );
    }

    #[test]
    fn first_row_replicates_west() {
        let n = Neighborhood::fetch(&img4(), 2, 0);
        assert_eq!(n.w, 1);
        assert_eq!(n.ww, 0);
        // No row above: N, NN, NE, NW, NNE all collapse to W.
        assert_eq!(n.n, 1);
        assert_eq!(n.nn, 1);
        assert_eq!(n.ne, 1);
        assert_eq!(n.nw, 1);
        assert_eq!(n.nne, 1);
    }

    #[test]
    fn first_column_replicates_north() {
        let n = Neighborhood::fetch(&img4(), 0, 2);
        assert_eq!(n.n, 4);
        assert_eq!(n.w, 4, "W falls back to N in column 0");
        assert_eq!(n.ww, 4);
        assert_eq!(n.nw, 4);
        assert_eq!(n.nn, 0);
        assert_eq!(n.ne, 5);
        assert_eq!(n.nne, 1);
    }

    #[test]
    fn last_column_replicates_ne() {
        let n = Neighborhood::fetch(&img4(), 3, 2);
        assert_eq!(n.ne, 7, "NE off the right edge falls back to N");
        assert_eq!(n.n, 7);
        assert_eq!(n.nne, 7, "NNE follows NE's fallback");
    }

    #[test]
    fn second_row_has_no_nn() {
        let n = Neighborhood::fetch(&img4(), 1, 1);
        assert_eq!(n.nn, 1, "NN falls back to N");
        assert_eq!(n.nne, 2, "NNE falls back to NE");
    }

    #[test]
    fn only_causal_pixels_are_read() {
        // Build two images identical in the causal prefix of (2,2) but
        // different after it; the neighbourhoods must match.
        let a = img4();
        let mut b = img4();
        b.set(3, 2, 99);
        b.set(0, 3, 77);
        assert_eq!(Neighborhood::fetch(&a, 2, 2), Neighborhood::fetch(&b, 2, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let _ = Neighborhood::fetch(&img4(), 4, 0);
    }
}
