//! Prediction-error remapping.
//!
//! The raw prediction error `e = X − X̃` lies in `[-255, 255]`, but because
//! the decoder knows `X̃`, only 256 of those values are distinguishable:
//! `e` can be wrapped modulo 256 into `[-128, 127]` without losing
//! information. The wrapped error is then zig-zag *folded* onto the
//! one-sided alphabet `0..=255` (0, −1→1, 1→2, −2→3, …) — the paper's
//! "remapped from the range −2ⁿ⁻¹ to 2ⁿ⁻¹, to the range 0 to 2ⁿ−1 to
//! reduce the alphabet size" — so small-magnitude errors become small
//! symbols near the top of the probability trees.

/// Wraps a raw prediction error into the centered interval `[-128, 127]`
/// (modulo 256).
///
/// # Examples
///
/// ```
/// use cbic_core::remap::wrap_error;
///
/// assert_eq!(wrap_error(1), 1);
/// assert_eq!(wrap_error(-200), 56);
/// assert_eq!(wrap_error(200), -56);
/// ```
#[inline]
pub fn wrap_error(e: i32) -> i32 {
    ((e + 128).rem_euclid(256)) - 128
}

/// Zig-zag folds a wrapped error (`[-128, 127]`) onto `0..=255`.
///
/// # Panics
///
/// Panics if `w` is outside `[-128, 127]`.
#[inline]
pub fn fold(w: i32) -> u8 {
    assert!((-128..=127).contains(&w), "wrapped error {w} out of range");
    if w >= 0 {
        (2 * w) as u8
    } else {
        (-2 * w - 1) as u8
    }
}

/// Inverse of [`fold`].
#[inline]
pub fn unfold(f: u8) -> i32 {
    let f = i32::from(f);
    if f % 2 == 0 {
        f / 2
    } else {
        -(f + 1) / 2
    }
}

/// Reconstructs the pixel from the adjusted prediction and the wrapped
/// error: `X = (X̃ + w) mod 256`.
///
/// # Panics
///
/// Panics if `prediction` is outside `0..=255`.
#[inline]
pub fn reconstruct(prediction: i32, wrapped: i32) -> u8 {
    assert!(
        (0..=255).contains(&prediction),
        "prediction {prediction} out of range"
    );
    (prediction + wrapped).rem_euclid(256) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_is_identity_in_range() {
        for e in -128..=127 {
            assert_eq!(wrap_error(e), e);
        }
    }

    #[test]
    fn wrap_is_mod_256() {
        for e in -255..=255 {
            let w = wrap_error(e);
            assert!((-128..=127).contains(&w));
            assert_eq!((e - w).rem_euclid(256), 0);
        }
    }

    #[test]
    fn fold_is_bijective() {
        let mut seen = [false; 256];
        for w in -128..=127 {
            let f = fold(w);
            assert!(!seen[usize::from(f)], "duplicate fold value {f}");
            seen[usize::from(f)] = true;
            assert_eq!(unfold(f), w);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fold_orders_by_magnitude() {
        assert_eq!(fold(0), 0);
        assert_eq!(fold(-1), 1);
        assert_eq!(fold(1), 2);
        assert_eq!(fold(-2), 3);
        assert_eq!(fold(2), 4);
        assert_eq!(fold(-128), 255);
    }

    #[test]
    fn reconstruction_inverts_the_error() {
        for pred in 0..=255 {
            for x in 0..=255u16 {
                let e = i32::from(x) - pred;
                let w = wrap_error(e);
                assert_eq!(reconstruct(pred, w), x as u8, "pred {pred}, x {x}");
            }
        }
    }

    #[test]
    fn full_roundtrip_through_the_alphabet() {
        for pred in [0, 1, 127, 255] {
            for x in 0..=255u16 {
                let w = wrap_error(i32::from(x) - pred);
                let f = fold(w);
                let w2 = unfold(f);
                assert_eq!(reconstruct(pred, w2), x as u8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fold_rejects_oversized() {
        let _ = fold(128);
    }
}
