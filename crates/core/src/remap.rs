//! Prediction-error remapping, generalized over the sample bit depth.
//!
//! For an `n`-bit image the raw prediction error `e = X − X̃` lies in
//! `[-(2ⁿ−1), 2ⁿ−1]`, but because the decoder knows `X̃`, only `2ⁿ` of
//! those values are distinguishable: `e` can be wrapped modulo `2ⁿ` into
//! `[-2ⁿ⁻¹, 2ⁿ⁻¹−1]` without losing information. The wrapped error is then
//! zig-zag *folded* onto the one-sided alphabet `0..2ⁿ` (0, −1→1, 1→2,
//! −2→3, …) — the paper's "remapped from the range −2ⁿ⁻¹ to 2ⁿ⁻¹, to the
//! range 0 to 2ⁿ−1 to reduce the alphabet size" — so small-magnitude errors
//! become small symbols near the top of the probability trees.
//!
//! Every function takes `half = 2ⁿ⁻¹` explicitly (128 for the paper's
//! 8-bit pixels); the codec derives it once per image from the view's
//! [`bit_depth`](cbic_image::ImageView::bit_depth).

/// `half` for an `n`-bit depth: `2^(n-1)`.
#[inline]
pub fn half_for_depth(bit_depth: u8) -> i32 {
    debug_assert!((1..=16).contains(&bit_depth));
    1 << (bit_depth - 1)
}

/// Wraps a raw prediction error into the centered interval
/// `[-half, half - 1]` (modulo `2 * half`).
///
/// # Examples
///
/// ```
/// use cbic_core::remap::wrap_error;
///
/// assert_eq!(wrap_error(1, 128), 1);
/// assert_eq!(wrap_error(-200, 128), 56);
/// assert_eq!(wrap_error(200, 128), -56);
/// assert_eq!(wrap_error(40_000, 32_768), -25_536); // 16-bit samples
/// ```
#[inline]
pub fn wrap_error(e: i32, half: i32) -> i32 {
    ((e + half).rem_euclid(2 * half)) - half
}

/// Zig-zag folds a wrapped error (`[-half, half - 1]`) onto
/// `0 .. 2 * half`.
///
/// # Panics
///
/// Panics if `w` is outside `[-half, half - 1]`.
#[inline]
pub fn fold(w: i32, half: i32) -> u16 {
    assert!(
        (-half..half).contains(&w),
        "wrapped error {w} out of [-{half}, {half})"
    );
    if w >= 0 {
        (2 * w) as u16
    } else {
        (-2 * w - 1) as u16
    }
}

/// Inverse of [`fold`] (the fold is depth-blind in this direction).
///
/// Branch-free zig-zag decode: `(f >> 1) ^ -(f & 1)` — the shift halves,
/// the xor-by-all-ones negates-and-decrements exactly when the low bit
/// says the value was negative.
#[inline]
pub fn unfold(f: u16) -> i32 {
    let f = i32::from(f);
    (f >> 1) ^ -(f & 1)
}

/// Reconstructs the pixel from the adjusted prediction and the wrapped
/// error: `X = (X̃ + w) mod 2·half`.
///
/// # Panics
///
/// Panics if `prediction` is outside `0 .. 2 * half`.
#[inline]
pub fn reconstruct(prediction: i32, wrapped: i32, half: i32) -> u16 {
    assert!(
        (0..2 * half).contains(&prediction),
        "prediction {prediction} out of range"
    );
    (prediction + wrapped).rem_euclid(2 * half) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_for_depth_matches_powers() {
        assert_eq!(half_for_depth(8), 128);
        assert_eq!(half_for_depth(12), 2048);
        assert_eq!(half_for_depth(16), 32768);
        assert_eq!(half_for_depth(1), 1);
    }

    #[test]
    fn wrap_is_identity_in_range() {
        for e in -128..=127 {
            assert_eq!(wrap_error(e, 128), e);
        }
        for e in -2048..=2047 {
            assert_eq!(wrap_error(e, 2048), e);
        }
    }

    #[test]
    fn wrap_is_mod_two_half() {
        for e in -255..=255 {
            let w = wrap_error(e, 128);
            assert!((-128..=127).contains(&w));
            assert_eq!((e - w).rem_euclid(256), 0);
        }
        for e in [-65535, -40000, -1, 0, 1, 40000, 65535] {
            let w = wrap_error(e, 32768);
            assert!((-32768..=32767).contains(&w));
            assert_eq!((e - w).rem_euclid(65536), 0);
        }
    }

    #[test]
    fn fold_is_bijective_at_eight_bits() {
        let mut seen = [false; 256];
        for w in -128..=127 {
            let f = fold(w, 128);
            assert!(!seen[usize::from(f)], "duplicate fold value {f}");
            seen[usize::from(f)] = true;
            assert_eq!(unfold(f), w);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fold_is_bijective_at_sixteen_bits() {
        let mut seen = vec![false; 65536];
        for w in -32768i32..=32767 {
            let f = fold(w, 32768);
            assert!(!seen[usize::from(f)], "duplicate fold value {f}");
            seen[usize::from(f)] = true;
            assert_eq!(unfold(f), w);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fold_orders_by_magnitude() {
        assert_eq!(fold(0, 128), 0);
        assert_eq!(fold(-1, 128), 1);
        assert_eq!(fold(1, 128), 2);
        assert_eq!(fold(-2, 128), 3);
        assert_eq!(fold(2, 128), 4);
        assert_eq!(fold(-128, 128), 255);
        assert_eq!(fold(-32768, 32768), 65535);
    }

    #[test]
    fn reconstruction_inverts_the_error() {
        for pred in 0..=255 {
            for x in 0..=255u16 {
                let e = i32::from(x) - pred;
                let w = wrap_error(e, 128);
                assert_eq!(reconstruct(pred, w, 128), x, "pred {pred}, x {x}");
            }
        }
    }

    #[test]
    fn sixteen_bit_roundtrip_through_the_alphabet() {
        let half = 32768;
        for pred in [0, 1, 32767, 65535] {
            for x in [0u16, 1, 255, 256, 32767, 32768, 65534, 65535] {
                let w = wrap_error(i32::from(x) - pred, half);
                let f = fold(w, half);
                let w2 = unfold(f);
                assert_eq!(reconstruct(pred, w2, half), x);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn fold_rejects_oversized() {
        let _ = fold(128, 128);
    }
}
