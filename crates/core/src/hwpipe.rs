//! Hardware-faithful encoder: the Fig. 3 architecture, register by
//! register.
//!
//! [`encode_raw`](crate::encode_raw) is the *algorithmic* reference — it
//! reads pixels from a random-access view. The FPGA cannot do that: it
//! sees a raster-scan pixel stream and keeps exactly **three image lines**
//! in rotating buffers (Section III: "we need to store 3 lines of image
//! pixel values in memory as context and use 3 pointers ... At the end of
//! processing each line, the 3 pointers have to be rotated").
//!
//! This module implements the encoder under those constraints as a **thin
//! line-buffer wrapper around the one pixel datapath** in
//! [`engine`](crate::engine):
//!
//! * [`LineBuffers`] — three line buffers + rotation, the only pixel
//!   storage (plus the pipeline registers holding `W`/`WW`);
//! * [`HwEncoder`] — a streaming, one-pixel-per-call encoder: each call
//!   fetches the causal neighbourhood from the buffers and hands it to the
//!   shared [`PixelEngine`](crate::engine::PixelEngine), which runs the
//!   paper's two lines (Line 2: gradients, primary prediction,
//!   texture/coding contexts, error feedback; Line 1: error formation,
//!   remap, estimator, context write-back). No model logic is duplicated
//!   here — the wrapper owns only the storage discipline.
//!
//! Both sides carry the sample bit depth (8–16): the line buffers hold
//! `u16` words and the wrap/fold modulus scales with the depth, exactly as
//! a parameterized RTL generic would.
//!
//! The equivalence suite asserts the byte stream is **identical** to the
//! software reference on every input — the "golden model vs RTL"
//! check-off a hardware team would run before tape-out.

use crate::codec::CodecConfig;
use crate::engine::{DecoderState, EncoderState};
use crate::neighborhood::Neighborhood;
use crate::remap::half_for_depth;
use cbic_arith::{BinaryDecoder, BinaryEncoder, DecisionDecoder, DecisionEncoder};
use cbic_bitio::{BitReader, BitSink, BitSource, BitWriter};
use cbic_image::{Image, ImageView};

/// Three rotating line buffers, as the hardware stores them.
///
/// `row(0)` is the line currently being written (the pixel just coded goes
/// here), `row(1)` the previous line (N/NE/NW), `row(2)` the line above
/// that (NN/NNE). [`Self::rotate`] renames the pointers at each end of
/// line — no pixel is ever copied, exactly like the hardware's pointer
/// rotation.
#[derive(Debug, Clone)]
pub struct LineBuffers {
    lines: [Vec<u16>; 3],
    /// Index of the buffer holding the line being written.
    head: usize,
    /// Number of rows completed (bounds the valid history).
    rows_done: usize,
    /// First-pixel mid-gray fallback (`2^(n-1)`).
    mid: u16,
}

impl LineBuffers {
    /// Creates buffers for 8-bit images `width` pixels wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        Self::with_depth(width, 8)
    }

    /// Creates buffers for images of the given bit depth.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the depth is outside `1..=16`.
    pub fn with_depth(width: usize, bit_depth: u8) -> Self {
        assert!(width > 0, "width must be nonzero");
        assert!(
            (1..=16).contains(&bit_depth),
            "bit depth {bit_depth} outside 1..=16"
        );
        Self {
            lines: [vec![0; width], vec![0; width], vec![0; width]],
            head: 0,
            rows_done: 0,
            mid: half_for_depth(bit_depth) as u16,
        }
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.lines[0].len()
    }

    /// Number of fully written rows so far.
    pub fn rows_done(&self) -> usize {
        self.rows_done
    }

    /// The line `depth` rows above the current one (0 = current).
    #[inline]
    fn row(&self, depth: usize) -> &[u16] {
        debug_assert!(depth < 3);
        &self.lines[(self.head + depth) % 3]
    }

    /// Writes the just-reconstructed pixel into the current line.
    #[inline]
    pub fn push(&mut self, x: usize, value: u16) {
        let head = self.head;
        self.lines[head][x] = value;
    }

    /// Rotates the three pointers at end of line: the oldest buffer is
    /// recycled as the new write target.
    pub fn rotate(&mut self) {
        self.head = (self.head + 2) % 3; // head-1 mod 3: oldest becomes head
        self.rows_done += 1;
    }

    /// Fetches the causal neighbourhood of `(x, y)` from the line buffers
    /// only, reproducing [`Neighborhood::fetch`]'s boundary rules bit for
    /// bit (`y` is passed purely to detect the first rows; pixels never
    /// come from anywhere but the three buffers).
    pub fn neighborhood(&self, x: usize, y: usize) -> Neighborhood {
        debug_assert!(x < self.width());
        debug_assert_eq!(y, self.rows_done);
        let n1 = (y >= 1).then(|| self.row(1));
        let n2 = (y >= 2).then(|| self.row(2));
        // `from_rows` reads only the causal prefix cur[..x] of the line
        // being written, matching the hardware's register timing.
        Neighborhood::from_rows(self.row(0), n1, n2, x, self.mid)
    }

    /// The raw causal row slices for the current scan row `y`: the line
    /// being written plus up to two completed lines above (`None` above
    /// the image top) — what the model-dispatching engine entry points
    /// ([`PixelEngine::encode_pixel_rows`](crate::engine::PixelEngine::encode_pixel_rows))
    /// consume, wide and classic alike.
    pub fn causal_rows(&self, y: usize) -> (&[u16], Option<&[u16]>, Option<&[u16]>) {
        debug_assert_eq!(y, self.rows_done);
        (
            self.row(0),
            (y >= 1).then(|| self.row(1)),
            (y >= 2).then(|| self.row(2)),
        )
    }

    /// First-pixel mid-gray fallback the buffers were armed with.
    pub fn mid(&self) -> u16 {
        self.mid
    }
}

/// Streaming hardware-model encoder: feed raster-scan pixels one at a
/// time, collect the bit stream at the end.
///
/// The encoder is generic over its [`DecisionEncoder`]: by default a
/// [`BinaryEncoder`] over an in-memory [`BitWriter`], with
/// [`Self::with_sink`] swapping in any [`BitSink`] — e.g. a
/// [`StreamBitWriter`](cbic_bitio::StreamBitWriter) emitting bytes
/// incrementally, the backing of the bounded-memory
/// [`StreamEncoder`](crate::stream::StreamEncoder). [`Self::with_coder`]
/// accepts an arbitrary decision coder instead, which is how the
/// lane-interleaved [`LaneEncoder`](cbic_arith::LaneEncoder) drives the
/// same line-buffer pipeline. The coded decisions are identical in every
/// case; only their packing differs.
///
/// # Examples
///
/// ```
/// use cbic_core::hwpipe::HwEncoder;
/// use cbic_core::CodecConfig;
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Boat.generate(32, 32);
/// let mut hw = HwEncoder::new(32, &CodecConfig::default());
/// for y in 0..32 {
///     for x in 0..32 {
///         hw.push_pixel(img.get(x, y));
///     }
/// }
/// let stream = hw.finish();
/// // Bit-identical to the software reference:
/// let (reference, _) = cbic_core::encode_raw(img.view(), &CodecConfig::default());
/// assert_eq!(stream, reference);
/// ```
#[derive(Debug)]
pub struct HwEncoder<E = BinaryEncoder<BitWriter>> {
    buffers: LineBuffers,
    state: EncoderState,
    ac: E,
    x: usize,
    y: usize,
    pixels: u64,
}

impl HwEncoder {
    /// Creates a streaming encoder for `width`-pixel 8-bit lines,
    /// buffering the bit stream in memory.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn new(width: usize, cfg: &CodecConfig) -> Self {
        Self::with_sink(width, 8, cfg, BitWriter::new())
    }

    /// Flushes the arithmetic coder and returns the byte stream
    /// (bit-identical to [`encode_raw`](crate::encode_raw) on the same
    /// pixels and configuration).
    pub fn finish(self) -> Vec<u8> {
        self.finish_sink().into_bytes()
    }

    /// Convenience: stream a whole view through the hardware model.
    pub fn encode_image(img: ImageView<'_>, cfg: &CodecConfig) -> Vec<u8> {
        let mut hw = Self::with_sink(img.width(), img.bit_depth(), cfg, BitWriter::new());
        for row in img.rows() {
            for &pixel in row {
                hw.push_pixel(pixel);
            }
        }
        hw.finish()
    }
}

impl<S: BitSink> HwEncoder<BinaryEncoder<S>> {
    /// Creates a streaming encoder for `width`-pixel lines of the given
    /// sample depth, emitting into an arbitrary [`BitSink`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, the depth is outside `1..=16`, or the
    /// configuration is invalid.
    pub fn with_sink(width: usize, bit_depth: u8, cfg: &CodecConfig, sink: S) -> Self {
        Self::with_coder(width, bit_depth, cfg, BinaryEncoder::new(sink))
    }

    /// Borrows the bit sink (e.g. to poll a streaming sink for I/O errors).
    pub fn sink(&self) -> &S {
        self.ac.sink()
    }

    /// Mutably borrows the bit sink.
    pub fn sink_mut(&mut self) -> &mut S {
        self.ac.sink_mut()
    }

    /// Flushes the arithmetic coder and returns the underlying bit sink.
    pub fn finish_sink(self) -> S {
        self.ac.finish()
    }
}

impl<E: DecisionEncoder> HwEncoder<E> {
    /// Creates a streaming encoder for `width`-pixel lines of the given
    /// sample depth, driving an arbitrary [`DecisionEncoder`] — the entry
    /// point for lane-interleaved coding
    /// ([`LaneEncoder`](cbic_arith::LaneEncoder)).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, the depth is outside `1..=16`, or the
    /// configuration is invalid.
    pub fn with_coder(width: usize, bit_depth: u8, cfg: &CodecConfig, coder: E) -> Self {
        Self {
            buffers: LineBuffers::with_depth(width, bit_depth),
            state: EncoderState::new(width, bit_depth, cfg),
            ac: coder,
            x: 0,
            y: 0,
            pixels: 0,
        }
    }

    /// Width of the lines this encoder consumes.
    pub fn width(&self) -> usize {
        self.buffers.width()
    }

    /// Sample bit depth of the pixel stream.
    pub fn bit_depth(&self) -> u8 {
        self.state.bit_depth()
    }

    /// Borrows the decision coder.
    pub fn coder(&self) -> &E {
        &self.ac
    }

    /// Mutably borrows the decision coder (e.g. to drain a
    /// [`LaneEncoder`](cbic_arith::LaneEncoder)'s buffered decisions for
    /// an exact mid-stream bit count).
    pub fn coder_mut(&mut self) -> &mut E {
        &mut self.ac
    }

    /// Consumes the encoder and returns the decision coder *without*
    /// flushing it — the caller finalizes (e.g.
    /// [`LaneEncoder::finish_to_bytes`](cbic_arith::LaneEncoder::finish_to_bytes)).
    pub fn into_coder(self) -> E {
        self.ac
    }

    /// Pixels consumed so far.
    pub fn pixels(&self) -> u64 {
        self.pixels
    }

    /// Current scan position `(x, y)` of the *next* pixel.
    pub fn position(&self) -> (usize, usize) {
        (self.x, self.y)
    }

    /// Consumes the next raster-scan pixel.
    ///
    /// One call models one initiation interval of the Fig. 3 pipeline: the
    /// causal neighbourhood comes out of the line buffers (Line 2 stage
    /// (a)), and the shared engine runs the remaining stages — prediction,
    /// context formation, error feedback, remap, and coding.
    pub fn push_pixel(&mut self, value: u16) {
        // A hard check: an oversized sample would silently wrap modulo the
        // sample range downstream and break the losslessness contract.
        assert!(
            i32::from(value) < 2 * self.state.half(),
            "sample {value} exceeds the {}-bit range",
            self.bit_depth()
        );
        let x = self.x;
        let (cur, n1, n2) = self.buffers.causal_rows(self.y);
        self.state
            .encode_pixel_rows(&mut self.ac, cur, n1, n2, x, value);

        // Reconstruction write-back into the line buffer (lossless: the
        // reconstructed pixel equals the input).
        self.buffers.push(x, value);

        self.pixels += 1;
        self.x += 1;
        if self.x == self.buffers.width() {
            self.x = 0;
            self.y += 1;
            self.buffers.rotate();
        }
    }
}

/// Streaming hardware-model decoder: the dual of [`HwEncoder`], producing
/// one reconstructed pixel per call from the same three-line-buffer state.
///
/// Like the encoder it is generic over its decision coder: [`Self::new`]
/// decodes a buffered byte slice through a [`BitReader`],
/// [`Self::with_source`] accepts any [`BitSource`] — in particular a
/// [`StreamBitReader`](cbic_bitio::StreamBitReader) refilled incrementally
/// from `std::io::Read`, the backing of
/// [`StreamDecoder`](crate::stream::StreamDecoder) — and
/// [`Self::with_coder`] accepts a whole [`DecisionDecoder`], which is how
/// the lane-interleaved [`LaneDecoder`](cbic_arith::LaneDecoder) reuses
/// the same line-buffer pipeline.
///
/// # Examples
///
/// ```
/// use cbic_core::hwpipe::{HwDecoder, HwEncoder};
/// use cbic_core::CodecConfig;
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Zelda.generate(24, 24);
/// let cfg = CodecConfig::default();
/// let stream = HwEncoder::encode_image(img.view(), &cfg);
/// let mut dec = HwDecoder::new(&stream, 24, &cfg);
/// for y in 0..24 {
///     for x in 0..24 {
///         assert_eq!(dec.next_pixel(), img.get(x, y));
///     }
/// }
/// ```
#[derive(Debug)]
pub struct HwDecoder<D> {
    buffers: LineBuffers,
    state: DecoderState,
    ac: D,
    x: usize,
    y: usize,
}

impl<'a> HwDecoder<BinaryDecoder<BitReader<'a>>> {
    /// Creates a streaming decoder over `stream` for `width`-pixel 8-bit
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn new(stream: &'a [u8], width: usize, cfg: &CodecConfig) -> Self {
        Self::with_source(BitReader::new(stream), width, 8, cfg)
    }

    /// Convenience: decode a whole 8-bit image through the hardware model.
    pub fn decode_image(stream: &'a [u8], width: usize, height: usize, cfg: &CodecConfig) -> Image {
        let mut dec = Self::new(stream, width, cfg);
        Image::from_fn16(width, height, 8, |_, _| dec.next_pixel())
    }
}

impl<S: BitSource> HwDecoder<BinaryDecoder<S>> {
    /// Creates a streaming decoder reading code bits from an arbitrary
    /// [`BitSource`] for `width`-pixel lines of the given sample depth.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, the depth is outside `1..=16`, or the
    /// configuration is invalid.
    pub fn with_source(source: S, width: usize, bit_depth: u8, cfg: &CodecConfig) -> Self {
        Self::with_coder(BinaryDecoder::new(source), width, bit_depth, cfg)
    }

    /// Borrows the bit source (e.g. to inspect padding counts or streaming
    /// I/O errors).
    pub fn source(&self) -> &S {
        self.ac.source()
    }
}

impl<D: DecisionDecoder> HwDecoder<D> {
    /// Creates a streaming decoder driving an arbitrary
    /// [`DecisionDecoder`] for `width`-pixel lines of the given sample
    /// depth — the entry point for lane-interleaved decoding
    /// ([`LaneDecoder`](cbic_arith::LaneDecoder)).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, the depth is outside `1..=16`, or the
    /// configuration is invalid.
    pub fn with_coder(coder: D, width: usize, bit_depth: u8, cfg: &CodecConfig) -> Self {
        Self {
            buffers: LineBuffers::with_depth(width, bit_depth),
            state: DecoderState::new(width, bit_depth, cfg),
            ac: coder,
            x: 0,
            y: 0,
        }
    }

    /// Borrows the decision coder (e.g. to inspect per-lane padding
    /// counts).
    pub fn coder(&self) -> &D {
        &self.ac
    }

    /// Decodes and returns the next raster-scan pixel: the neighbourhood
    /// comes out of the line buffers, the shared engine runs the model and
    /// the reconstruction, and the pixel is written back for the next
    /// rows.
    pub fn next_pixel(&mut self) -> u16 {
        let x = self.x;
        let (cur, n1, n2) = self.buffers.causal_rows(self.y);
        let value = self.state.decode_pixel_rows(&mut self.ac, cur, n1, n2, x);
        self.buffers.push(x, value);
        self.x += 1;
        if self.x == self.buffers.width() {
            self.x = 0;
            self.y += 1;
            self.buffers.rotate();
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_raw;
    use cbic_image::corpus::CorpusImage;

    fn assert_equivalent(img: &Image, cfg: &CodecConfig) {
        let (reference, _) = encode_raw(img.view(), cfg);
        let hw = HwEncoder::encode_image(img.view(), cfg);
        assert_eq!(
            hw, reference,
            "hardware model diverged from the software reference"
        );
    }

    #[test]
    fn equivalent_on_corpus() {
        let cfg = CodecConfig::default();
        for (_, img) in cbic_image::corpus::generate(48) {
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn equivalent_on_edge_shapes() {
        let cfg = CodecConfig::default();
        for (w, h) in [(1, 1), (1, 9), (9, 1), (3, 3), (17, 2), (2, 17)] {
            let img = Image::from_fn(w, h, |x, y| (x * 73 + y * 31) as u8);
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn equivalent_on_deep_samples() {
        let cfg = CodecConfig::default();
        for depth in [10u8, 12, 16] {
            let img = Image::from_fn16(24, 24, depth, |x, y| {
                ((x as u32 * 523 + y as u32 * 7919) % (1u32 << depth.min(15))) as u16
            });
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn equivalent_under_nondefault_configs() {
        let img = CorpusImage::Peppers.generate(32, 32);
        for cfg in [
            CodecConfig {
                error_feedback: false,
                ..CodecConfig::default()
            },
            CodecConfig {
                texture_bits: 0,
                ..CodecConfig::default()
            },
            CodecConfig {
                division: crate::DivisionKind::Exact,
                ..CodecConfig::default()
            },
        ] {
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn stream_decodes_with_the_standard_decoder() {
        let img = CorpusImage::Lena.generate(40, 40);
        let cfg = CodecConfig::default();
        let hw = HwEncoder::encode_image(img.view(), &cfg);
        let back = crate::codec::decode_raw(&hw, 40, 40, 8, &cfg);
        assert_eq!(back, img);
    }

    #[test]
    fn hw_decoder_reads_software_streams() {
        // Full cross-matrix: {sw, hw} encoder x {sw, hw} decoder.
        let img = CorpusImage::Goldhill.generate(32, 32);
        let cfg = CodecConfig::default();
        let (sw_stream, _) = encode_raw(img.view(), &cfg);
        let hw_stream = HwEncoder::encode_image(img.view(), &cfg);
        assert_eq!(sw_stream, hw_stream);
        assert_eq!(HwDecoder::decode_image(&sw_stream, 32, 32, &cfg), img);
        assert_eq!(crate::codec::decode_raw(&hw_stream, 32, 32, 8, &cfg), img);
    }

    #[test]
    fn hw_decoder_streams_pixel_by_pixel() {
        let img = CorpusImage::Mandrill.generate(16, 16);
        let cfg = CodecConfig::default();
        let stream = HwEncoder::encode_image(img.view(), &cfg);
        let mut dec = HwDecoder::new(&stream, 16, &cfg);
        // Interleave decoding with position checks: truly streaming.
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(dec.next_pixel(), img.get(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn sixteen_bit_stream_roundtrips_through_hw_pair() {
        let cfg = CodecConfig::default();
        let img = Image::from_fn16(20, 20, 16, |x, y| (x * 3001 + y * 17) as u16);
        let stream = HwEncoder::encode_image(img.view(), &cfg);
        let mut dec = HwDecoder::with_source(BitReader::new(&stream), 20, 16, &cfg);
        for y in 0..20 {
            for x in 0..20 {
                assert_eq!(dec.next_pixel(), img.get(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn line_buffers_rotate_without_copies() {
        let mut b = LineBuffers::new(4);
        for v in [10u16, 11, 12, 13] {
            b.push(0, v);
            b.push(1, v);
            b.push(2, v);
            b.push(3, v);
            b.rotate();
        }
        // After writing rows 10..13, row(1) holds 13s, row(2) holds 12s.
        assert_eq!(b.row(1), &[13, 13, 13, 13]);
        assert_eq!(b.row(2), &[12, 12, 12, 12]);
        assert_eq!(b.rows_done(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the 10-bit range")]
    fn push_pixel_rejects_samples_beyond_the_depth() {
        let mut hw = HwEncoder::with_sink(4, 10, &CodecConfig::default(), BitWriter::new());
        hw.push_pixel(1500);
    }

    #[test]
    fn streaming_position_tracking() {
        let mut hw = HwEncoder::new(3, &CodecConfig::default());
        assert_eq!(hw.position(), (0, 0));
        for _ in 0..4 {
            hw.push_pixel(7);
        }
        assert_eq!(hw.position(), (1, 1));
        assert_eq!(hw.pixels(), 4);
    }

    #[test]
    fn neighborhood_matches_image_fetch() {
        // The buffer-based fetch must agree with the random-access fetch
        // at every position of a test image.
        let img = CorpusImage::Barb.generate(16, 16);
        let mut b = LineBuffers::new(16);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(
                    b.neighborhood(x, y),
                    Neighborhood::fetch(&img.view(), x, y),
                    "at ({x},{y})"
                );
                b.push(x, img.get(x, y));
            }
            b.rotate();
        }
    }
}
