//! Hardware-faithful encoder: the Fig. 3 architecture, register by
//! register.
//!
//! [`encode_raw`](crate::encode_raw) is the *algorithmic* reference — it
//! reads pixels from a random-access image. The FPGA cannot do that: it
//! sees a raster-scan pixel stream and keeps exactly **three image lines**
//! in rotating buffers (Section III: "we need to store 3 lines of image
//! pixel values in memory as context and use 3 pointers ... At the end of
//! processing each line, the 3 pointers have to be rotated").
//!
//! This module re-implements the encoder under those constraints:
//!
//! * [`LineBuffers`] — three line buffers + rotation, the only pixel
//!   storage (plus the pipeline registers holding `W`/`WW`);
//! * [`HwEncoder`] — a streaming, one-pixel-per-call encoder structured as
//!   the paper's two lines: Line 2 computes gradients, primary prediction,
//!   texture/coding contexts, and the error feedback for the *incoming*
//!   pixel; Line 1 forms the prediction error, maps it, drives the
//!   estimator, and updates the context store.
//!
//! The equivalence suite asserts the byte stream is **identical** to the
//! software reference on every input — the "golden model vs RTL"
//! check-off a hardware team would run before tape-out.

use crate::codec::{CodecConfig, CODING_CONTEXTS};
use crate::context::{error_energy, quantize_energy, texture_pattern, ContextStore};
use crate::neighborhood::Neighborhood;
use crate::predictor::{gap_predict, Gradients};
use crate::remap::{fold, wrap_error};
use cbic_arith::{BinaryDecoder, BinaryEncoder, SymbolCoder};
use cbic_bitio::{BitReader, BitSink, BitSource, BitWriter};
use cbic_image::Image;

/// Three rotating line buffers, as the hardware stores them.
///
/// `row(0)` is the line currently being written (the pixel just coded goes
/// here), `row(1)` the previous line (N/NE/NW), `row(2)` the line above
/// that (NN/NNE). [`Self::rotate`] renames the pointers at each end of
/// line — no pixel is ever copied, exactly like the hardware's pointer
/// rotation.
#[derive(Debug, Clone)]
pub struct LineBuffers {
    lines: [Vec<u8>; 3],
    /// Index of the buffer holding the line being written.
    head: usize,
    /// Number of rows completed (bounds the valid history).
    rows_done: usize,
}

impl LineBuffers {
    /// Creates buffers for images `width` pixels wide.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be nonzero");
        Self {
            lines: [vec![0; width], vec![0; width], vec![0; width]],
            head: 0,
            rows_done: 0,
        }
    }

    /// Buffer width.
    pub fn width(&self) -> usize {
        self.lines[0].len()
    }

    /// Number of fully written rows so far.
    pub fn rows_done(&self) -> usize {
        self.rows_done
    }

    /// The line `depth` rows above the current one (0 = current).
    #[inline]
    fn row(&self, depth: usize) -> &[u8] {
        debug_assert!(depth < 3);
        &self.lines[(self.head + depth) % 3]
    }

    /// Writes the just-reconstructed pixel into the current line.
    #[inline]
    pub fn push(&mut self, x: usize, value: u8) {
        let head = self.head;
        self.lines[head][x] = value;
    }

    /// Rotates the three pointers at end of line: the oldest buffer is
    /// recycled as the new write target.
    pub fn rotate(&mut self) {
        self.head = (self.head + 2) % 3; // head-1 mod 3: oldest becomes head
        self.rows_done += 1;
    }

    /// Fetches the causal neighbourhood of `(x, y)` from the line buffers
    /// only, reproducing [`Neighborhood::fetch`]'s boundary rules bit for
    /// bit (`y` is passed purely to detect the first rows; pixels never
    /// come from anywhere but the three buffers).
    pub fn neighborhood(&self, x: usize, y: usize) -> Neighborhood {
        let width = self.width();
        debug_assert!(x < width);
        debug_assert_eq!(y, self.rows_done);
        let cur = self.row(0);
        let n1 = self.row(1);
        let n2 = self.row(2);

        let w = if x >= 1 {
            cur[x - 1]
        } else if y >= 1 {
            n1[x]
        } else {
            128
        };
        let ww = if x >= 2 { cur[x - 2] } else { w };
        let n = if y >= 1 { n1[x] } else { w };
        let nn = if y >= 2 { n2[x] } else { n };
        let nw = if x >= 1 && y >= 1 { n1[x - 1] } else { n };
        let ne = if x + 1 < width && y >= 1 {
            n1[x + 1]
        } else {
            n
        };
        let nne = if x + 1 < width && y >= 2 {
            n2[x + 1]
        } else {
            ne
        };
        Neighborhood {
            w,
            ww,
            n,
            nn,
            ne,
            nw,
            nne,
        }
    }
}

/// Streaming hardware-model encoder: feed raster-scan pixels one at a
/// time, collect the bit stream at the end.
///
/// The encoder is generic over its [`BitSink`]: the default [`BitWriter`]
/// buffers the stream in memory, while a
/// [`StreamBitWriter`](cbic_bitio::StreamBitWriter) (via
/// [`Self::with_sink`]) emits bytes incrementally — the backing of the
/// bounded-memory [`StreamEncoder`](crate::stream::StreamEncoder). The
/// produced bits are identical either way.
///
/// # Examples
///
/// ```
/// use cbic_core::hwpipe::HwEncoder;
/// use cbic_core::CodecConfig;
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Boat.generate(32, 32);
/// let mut hw = HwEncoder::new(32, &CodecConfig::default());
/// for y in 0..32 {
///     for x in 0..32 {
///         hw.push_pixel(img.get(x, y));
///     }
/// }
/// let stream = hw.finish();
/// // Bit-identical to the software reference:
/// let (reference, _) = cbic_core::encode_raw(&img, &CodecConfig::default());
/// assert_eq!(stream, reference);
/// ```
#[derive(Debug)]
pub struct HwEncoder<S = BitWriter> {
    buffers: LineBuffers,
    store: ContextStore,
    /// Row buffer of |wrapped error| per column — the hardware register
    /// file feeding `e_W` into the energy term.
    abs_err: Vec<u8>,
    coder: SymbolCoder,
    ac: BinaryEncoder<S>,
    cfg: CodecConfig,
    x: usize,
    y: usize,
    pixels: u64,
}

impl HwEncoder {
    /// Creates a streaming encoder for `width`-pixel lines, buffering the
    /// bit stream in memory.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn new(width: usize, cfg: &CodecConfig) -> Self {
        Self::with_sink(width, cfg, BitWriter::new())
    }

    /// Flushes the arithmetic coder and returns the byte stream
    /// (bit-identical to [`encode_raw`](crate::encode_raw) on the same
    /// pixels and configuration).
    pub fn finish(self) -> Vec<u8> {
        self.finish_sink().into_bytes()
    }

    /// Convenience: stream a whole image through the hardware model.
    ///
    /// # Panics
    ///
    /// Panics if the image width differs from the encoder width.
    pub fn encode_image(img: &Image, cfg: &CodecConfig) -> Vec<u8> {
        let mut hw = Self::new(img.width(), cfg);
        for y in 0..img.height() {
            for x in 0..img.width() {
                hw.push_pixel(img.get(x, y));
            }
        }
        hw.finish()
    }
}

impl<S: BitSink> HwEncoder<S> {
    /// Creates a streaming encoder for `width`-pixel lines emitting into an
    /// arbitrary [`BitSink`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn with_sink(width: usize, cfg: &CodecConfig, sink: S) -> Self {
        Self {
            buffers: LineBuffers::new(width),
            store: ContextStore::new(cfg.compound_contexts(), cfg.division, cfg.aging),
            abs_err: vec![0; width],
            coder: SymbolCoder::new(CODING_CONTEXTS, cfg.estimator),
            ac: BinaryEncoder::new(sink),
            cfg: *cfg,
            x: 0,
            y: 0,
            pixels: 0,
        }
    }

    /// Width of the lines this encoder consumes.
    pub fn width(&self) -> usize {
        self.buffers.width()
    }

    /// Borrows the bit sink (e.g. to poll a streaming sink for I/O errors).
    pub fn sink(&self) -> &S {
        self.ac.sink()
    }

    /// Mutably borrows the bit sink.
    pub fn sink_mut(&mut self) -> &mut S {
        self.ac.sink_mut()
    }

    /// Flushes the arithmetic coder and returns the underlying bit sink.
    pub fn finish_sink(self) -> S {
        self.ac.finish()
    }

    /// Pixels consumed so far.
    pub fn pixels(&self) -> u64 {
        self.pixels
    }

    /// Current scan position `(x, y)` of the *next* pixel.
    pub fn position(&self) -> (usize, usize) {
        (self.x, self.y)
    }

    /// Consumes the next raster-scan pixel.
    ///
    /// One call models one initiation interval of the Fig. 3 pipeline:
    /// Line 2 stages (a)–(e) build the prediction and contexts from the
    /// line buffers; Line 1 stages (a)–(d) form, map, and code the error
    /// and write back the model state.
    pub fn push_pixel(&mut self, value: u8) {
        let x = self.x;
        let y = self.y;

        // ---- Line 2: context computation ----
        // (a) update context with new symbol -> line-buffer fetch
        let nb = self.buffers.neighborhood(x, y);
        // (b) gradients
        let g = Gradients::compute(&nb);
        // (c) primary prediction + quantized coding context
        let x_hat = gap_predict(&nb, g);
        let e_w = i32::from(if x > 0 {
            self.abs_err[x - 1]
        } else {
            self.abs_err[0]
        });
        let qe = usize::from(quantize_energy(error_energy(g, e_w)));
        // (d) texture pattern + compound context index
        let t = texture_pattern(&nb, x_hat, u32::from(self.cfg.texture_bits));
        let ctx = (qe << self.cfg.texture_bits) | usize::from(t);
        // (e) error feedback -> adjusted prediction (LUT division)
        let e_bar = if self.cfg.error_feedback {
            self.store.mean(ctx)
        } else {
            0
        };
        let x_tilde = (x_hat + e_bar).clamp(0, 255);

        // ---- Line 1: error formation and coding ----
        // (a) prediction error
        let wrapped = wrap_error(i32::from(value) - x_tilde);
        // (c) map error; estimator + binary arithmetic coder
        self.coder.encode(&mut self.ac, qe, fold(wrapped));
        // (b) update sum/count in the compound context
        if self.cfg.error_feedback {
            self.store.update(ctx, wrapped);
        }
        // (d) update coding-context inputs for the next pixel
        self.abs_err[x] = wrapped.unsigned_abs().min(255) as u8;

        // Reconstruction write-back into the line buffer (lossless: the
        // reconstructed pixel equals the input).
        self.buffers.push(x, value);

        self.pixels += 1;
        self.x += 1;
        if self.x == self.buffers.width() {
            self.x = 0;
            self.y += 1;
            self.buffers.rotate();
        }
    }
}

/// Streaming hardware-model decoder: the dual of [`HwEncoder`], producing
/// one reconstructed pixel per call from the same three-line-buffer state.
///
/// Like the encoder it is generic over its bit transport: [`Self::new`]
/// decodes a buffered byte slice through a [`BitReader`], while
/// [`Self::with_source`] accepts any [`BitSource`] — in particular a
/// [`StreamBitReader`](cbic_bitio::StreamBitReader) refilled incrementally
/// from `std::io::Read`, the backing of
/// [`StreamDecoder`](crate::stream::StreamDecoder).
///
/// # Examples
///
/// ```
/// use cbic_core::hwpipe::{HwDecoder, HwEncoder};
/// use cbic_core::CodecConfig;
/// use cbic_image::corpus::CorpusImage;
///
/// let img = CorpusImage::Zelda.generate(24, 24);
/// let cfg = CodecConfig::default();
/// let stream = HwEncoder::encode_image(&img, &cfg);
/// let mut dec = HwDecoder::new(&stream, 24, &cfg);
/// for y in 0..24 {
///     for x in 0..24 {
///         assert_eq!(dec.next_pixel(), img.get(x, y));
///     }
/// }
/// ```
#[derive(Debug)]
pub struct HwDecoder<S> {
    buffers: LineBuffers,
    store: ContextStore,
    abs_err: Vec<u8>,
    coder: SymbolCoder,
    ac: BinaryDecoder<S>,
    cfg: CodecConfig,
    x: usize,
    y: usize,
}

impl<'a> HwDecoder<BitReader<'a>> {
    /// Creates a streaming decoder over `stream` for `width`-pixel lines.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn new(stream: &'a [u8], width: usize, cfg: &CodecConfig) -> Self {
        Self::with_source(BitReader::new(stream), width, cfg)
    }

    /// Convenience: decode a whole image through the hardware model.
    pub fn decode_image(stream: &'a [u8], width: usize, height: usize, cfg: &CodecConfig) -> Image {
        let mut dec = Self::new(stream, width, cfg);
        Image::from_fn(width, height, |_, _| dec.next_pixel())
    }
}

impl<S: BitSource> HwDecoder<S> {
    /// Creates a streaming decoder reading code bits from an arbitrary
    /// [`BitSource`] for `width`-pixel lines.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or the configuration is invalid.
    pub fn with_source(source: S, width: usize, cfg: &CodecConfig) -> Self {
        Self {
            buffers: LineBuffers::new(width),
            store: ContextStore::new(cfg.compound_contexts(), cfg.division, cfg.aging),
            abs_err: vec![0; width],
            coder: SymbolCoder::new(CODING_CONTEXTS, cfg.estimator),
            ac: BinaryDecoder::new(source),
            cfg: *cfg,
            x: 0,
            y: 0,
        }
    }

    /// Borrows the bit source (e.g. to inspect padding counts or streaming
    /// I/O errors).
    pub fn source(&self) -> &S {
        self.ac.source()
    }

    /// Decodes and returns the next raster-scan pixel.
    pub fn next_pixel(&mut self) -> u8 {
        let x = self.x;
        let y = self.y;
        let nb = self.buffers.neighborhood(x, y);
        let g = Gradients::compute(&nb);
        let x_hat = gap_predict(&nb, g);
        let e_w = i32::from(if x > 0 {
            self.abs_err[x - 1]
        } else {
            self.abs_err[0]
        });
        let qe = usize::from(quantize_energy(error_energy(g, e_w)));
        let t = texture_pattern(&nb, x_hat, u32::from(self.cfg.texture_bits));
        let ctx = (qe << self.cfg.texture_bits) | usize::from(t);
        let e_bar = if self.cfg.error_feedback {
            self.store.mean(ctx)
        } else {
            0
        };
        let x_tilde = (x_hat + e_bar).clamp(0, 255);

        let wrapped = crate::remap::unfold(self.coder.decode(&mut self.ac, qe));
        let value = crate::remap::reconstruct(x_tilde, wrapped);

        if self.cfg.error_feedback {
            self.store.update(ctx, wrapped);
        }
        self.abs_err[x] = wrapped.unsigned_abs().min(255) as u8;
        self.buffers.push(x, value);
        self.x += 1;
        if self.x == self.buffers.width() {
            self.x = 0;
            self.y += 1;
            self.buffers.rotate();
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_raw;
    use cbic_image::corpus::CorpusImage;

    fn assert_equivalent(img: &Image, cfg: &CodecConfig) {
        let (reference, _) = encode_raw(img, cfg);
        let hw = HwEncoder::encode_image(img, cfg);
        assert_eq!(
            hw, reference,
            "hardware model diverged from the software reference"
        );
    }

    #[test]
    fn equivalent_on_corpus() {
        let cfg = CodecConfig::default();
        for (_, img) in cbic_image::corpus::generate(48) {
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn equivalent_on_edge_shapes() {
        let cfg = CodecConfig::default();
        for (w, h) in [(1, 1), (1, 9), (9, 1), (3, 3), (17, 2), (2, 17)] {
            let img = Image::from_fn(w, h, |x, y| (x * 73 + y * 31) as u8);
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn equivalent_under_nondefault_configs() {
        let img = CorpusImage::Peppers.generate(32, 32);
        for cfg in [
            CodecConfig {
                error_feedback: false,
                ..CodecConfig::default()
            },
            CodecConfig {
                texture_bits: 0,
                ..CodecConfig::default()
            },
            CodecConfig {
                division: crate::DivisionKind::Exact,
                ..CodecConfig::default()
            },
        ] {
            assert_equivalent(&img, &cfg);
        }
    }

    #[test]
    fn stream_decodes_with_the_standard_decoder() {
        let img = CorpusImage::Lena.generate(40, 40);
        let cfg = CodecConfig::default();
        let hw = HwEncoder::encode_image(&img, &cfg);
        let back = crate::codec::decode_raw(&hw, 40, 40, &cfg);
        assert_eq!(back, img);
    }

    #[test]
    fn hw_decoder_reads_software_streams() {
        // Full cross-matrix: {sw, hw} encoder x {sw, hw} decoder.
        let img = CorpusImage::Goldhill.generate(32, 32);
        let cfg = CodecConfig::default();
        let (sw_stream, _) = encode_raw(&img, &cfg);
        let hw_stream = HwEncoder::encode_image(&img, &cfg);
        assert_eq!(sw_stream, hw_stream);
        assert_eq!(HwDecoder::decode_image(&sw_stream, 32, 32, &cfg), img);
        assert_eq!(crate::codec::decode_raw(&hw_stream, 32, 32, &cfg), img);
    }

    #[test]
    fn hw_decoder_streams_pixel_by_pixel() {
        let img = CorpusImage::Mandrill.generate(16, 16);
        let cfg = CodecConfig::default();
        let stream = HwEncoder::encode_image(&img, &cfg);
        let mut dec = HwDecoder::new(&stream, 16, &cfg);
        // Interleave decoding with position checks: truly streaming.
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(dec.next_pixel(), img.get(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn line_buffers_rotate_without_copies() {
        let mut b = LineBuffers::new(4);
        for v in [10u8, 11, 12, 13] {
            b.push(0, v);
            b.push(1, v);
            b.push(2, v);
            b.push(3, v);
            b.rotate();
        }
        // After writing rows 10..13, row(1) holds 13s, row(2) holds 12s.
        assert_eq!(b.row(1), &[13, 13, 13, 13]);
        assert_eq!(b.row(2), &[12, 12, 12, 12]);
        assert_eq!(b.rows_done(), 4);
    }

    #[test]
    fn streaming_position_tracking() {
        let mut hw = HwEncoder::new(3, &CodecConfig::default());
        assert_eq!(hw.position(), (0, 0));
        for _ in 0..4 {
            hw.push_pixel(7);
        }
        assert_eq!(hw.position(), (1, 1));
        assert_eq!(hw.pixels(), 4);
    }

    #[test]
    fn neighborhood_matches_image_fetch() {
        // The buffer-based fetch must agree with the random-access fetch
        // at every position of a test image.
        let img = CorpusImage::Barb.generate(16, 16);
        let mut b = LineBuffers::new(16);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(
                    b.neighborhood(x, y),
                    Neighborhood::fetch(&img, x, y),
                    "at ({x},{y})"
                );
                b.push(x, img.get(x, y));
            }
            b.rotate();
        }
    }
}
