//! Compound-context formation and the error-feedback store.
//!
//! The paper forms **512 compound contexts** from a 6-bit texture pattern
//! (six causal neighbours compared against the primary prediction `X̂`) and
//! a 3-bit quantized error-energy index `QE`. Each context keeps the sum
//! (13 bits + sign) and count (5 bits) of the prediction errors observed in
//! it; their quotient — computed by the 1 KB division LUT — is the error
//! feedback `ē` that corrects the prediction.
//!
//! The 13-bit sum bound is not arbitrary: with the count capped at 31 and
//! |error| ≤ 128, |sum| ≤ 31 × 128 = 3968 < 2¹³, which is exactly the
//! paper's "13 bits (2⁵ × 2⁸ = 2¹³) plus one sign bit to store the sum of
//! errors safely".

use crate::neighborhood::Neighborhood;
use crate::predictor::Gradients;
use cbic_hw::divlut::{exact_div, DivLut};

/// CALIC's published quantizer thresholds for the error energy
/// `Δ = dh + dv + 2|e_W|`, giving 8 coding contexts.
pub const QE_THRESHOLDS: [i32; 7] = [5, 15, 25, 42, 60, 85, 140];

/// Entries in [`QE_LUT`]. The last threshold is 140, so every energy at or
/// above 141 lands in level 7; 256 entries cover the whole quantizer with
/// one saturating index. (Inside the codec the post-shift energy is
/// bounded by `7·2⁸ − 6 = 1786` anyway — see
/// [`threshold_shift`](crate::predictor::threshold_shift) — so the
/// saturation only ever collapses values that are all level 7.)
const QE_LUT_LEN: usize = 256;

/// The energy quantizer as a ROM: `QE_LUT[min(Δ, 255)]` — one load and one
/// clamp instead of seven compares, exactly the table a hardware
/// implementation would bake into LUT fabric.
static QE_LUT: [u8; QE_LUT_LEN] = build_qe_lut();

const fn build_qe_lut() -> [u8; QE_LUT_LEN] {
    let mut lut = [0u8; QE_LUT_LEN];
    let mut delta = 0usize;
    while delta < QE_LUT_LEN {
        let mut qe = 0u8;
        let mut k = 0usize;
        while k < QE_THRESHOLDS.len() {
            if delta as i32 > QE_THRESHOLDS[k] {
                qe += 1;
            }
            k += 1;
        }
        lut[delta] = qe;
        delta += 1;
    }
    lut
}

/// Quantizes the error energy `Δ` into the 3-bit coding-context index
/// `QE` — the branchless ROM lookup on the codec's hot path.
///
/// Equal to [`quantize_energy_ref`] for every `i32` input (negative
/// energies clamp to level 0, saturated ones to level 7), property-tested
/// across the full energy range reachable at any supported depth.
///
/// # Examples
///
/// ```
/// use cbic_core::context::quantize_energy;
///
/// assert_eq!(quantize_energy(0), 0);
/// assert_eq!(quantize_energy(20), 2);
/// assert_eq!(quantize_energy(1000), 7);
/// ```
#[inline]
pub fn quantize_energy(delta: i32) -> u8 {
    QE_LUT[(delta.max(0) as usize).min(QE_LUT_LEN - 1)]
}

/// The reference comparison-loop quantizer the LUT is derived from — kept
/// as the executable specification, not used on any coding path.
///
/// # Examples
///
/// ```
/// use cbic_core::context::{quantize_energy, quantize_energy_ref};
///
/// for delta in -300..2000 {
///     assert_eq!(quantize_energy(delta), quantize_energy_ref(delta));
/// }
/// ```
pub fn quantize_energy_ref(delta: i32) -> u8 {
    let mut qe = 0u8;
    for &t in &QE_THRESHOLDS {
        if delta > t {
            qe += 1;
        }
    }
    qe
}

/// Computes the texture pattern: one bit per compared neighbour
/// (`1` when the neighbour is below the prediction `X̂`), using the six
/// neighbours `{N, W, NW, NE, NN, WW}`.
///
/// `bits` selects how many of the six comparisons participate (the paper
/// uses all 6 → 64 patterns; ablation A3 sweeps fewer).
///
/// # Panics
///
/// Panics if `bits > 6`.
#[inline]
pub fn texture_pattern(n: &Neighborhood, prediction: i32, bits: u32) -> u16 {
    assert!(bits <= 6, "texture pattern has at most 6 bits");
    // Branch-free: all six comparisons become mask bits, then the width
    // select is one AND — the same dataflow as the hardware comparators
    // feeding the context-index wires.
    let below = |v: u16| u16::from(i32::from(v) < prediction);
    let t = below(n.n)
        | below(n.w) << 1
        | below(n.nw) << 2
        | below(n.ne) << 3
        | below(n.nn) << 4
        | below(n.ww) << 5;
    t & ((1u16 << bits) - 1)
}

/// Error energy `Δ = dh + dv + 2 |e_W|` (the paper's "local gradients dv,
/// dh and a previous prediction error e of W").
#[inline]
pub fn error_energy(g: Gradients, abs_err_w: i32) -> i32 {
    g.dh + g.dv + 2 * abs_err_w
}

/// Which divider implements the error-feedback mean — the paper's 1 KB
/// lookup table, or an exact hardware divider (ablation A2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DivisionKind {
    /// The paper's 512-entry × 16-bit ROM divider.
    #[default]
    Lut,
    /// Exact truncating division (reference).
    Exact,
}

/// Per-compound-context error statistics: the paper's `(sum, count)` pair
/// with the overflow guard ("aging") and bounded-dividend division.
///
/// The storage is **structure-of-arrays**, mirroring the paper's banked
/// BRAM layout (see `cbic_hw::memory::ContextBankLayout`): a sum bank, a
/// count bank, and a *feedback* bank caching each context's current
/// quotient `ē = sum / count`. The hardware reads the divider output in
/// the same cycle it writes the sum/count banks; the software equivalent
/// is recomputing the cached feedback inside [`Self::update`], which turns
/// the per-pixel [`Self::mean`] on the hot path into a single bank read.
///
/// The store accepts wrapped errors up to a configurable magnitude bound
/// (`2^(n-1)` for `n`-bit samples; the 8-bit default is the paper's 128),
/// so one store type serves every sample depth.
#[derive(Debug, Clone)]
pub struct ContextStore {
    sums: Vec<i32>,
    counts: Vec<u8>,
    /// Cached `sum / count` per context (0 while the count is 0), kept
    /// exactly in sync by [`Self::update`]. `i16` is enough: the divider
    /// saturates its dividend at ±1023.
    feedback: Vec<i16>,
    lut: DivLut,
    division: DivisionKind,
    /// `true` = halve sum and count when the count saturates (the paper);
    /// `false` = freeze updates at saturation (ablation A1).
    aging: bool,
    /// Largest |wrapped error| a context may absorb.
    max_err: i32,
    halvings: u64,
}

/// Maximum value of the 5-bit occurrence count.
pub const COUNT_MAX: u8 = 31;

impl ContextStore {
    /// Creates a store with `contexts` zeroed entries for 8-bit samples
    /// (error bound 128, the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    pub fn new(contexts: usize, division: DivisionKind, aging: bool) -> Self {
        Self::with_max_err(contexts, division, aging, 128)
    }

    /// Creates a store accepting wrapped errors up to `max_err` in
    /// magnitude (`2^(n-1)` for `n`-bit samples).
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero or `max_err` is not positive.
    pub fn with_max_err(
        contexts: usize,
        division: DivisionKind,
        aging: bool,
        max_err: i32,
    ) -> Self {
        assert!(contexts > 0, "need at least one context");
        assert!(max_err > 0, "error bound must be positive");
        Self {
            sums: vec![0; contexts],
            counts: vec![0; contexts],
            feedback: vec![0; contexts],
            lut: DivLut::new(),
            division,
            aging,
            max_err,
            halvings: 0,
        }
    }

    /// Re-arms the store for a different error magnitude bound (used when
    /// a session switches to an image of another bit depth). Call
    /// [`Self::reset`] alongside; the cell storage is reused either way.
    pub fn set_max_err(&mut self, max_err: i32) {
        assert!(max_err > 0, "error bound must be positive");
        self.max_err = max_err;
    }

    /// Number of compound contexts.
    pub fn contexts(&self) -> usize {
        self.sums.len()
    }

    /// Zeroes every context's `(sum, count)` pair and the halving counter
    /// in place, reusing the cell storage and the division LUT — the
    /// session-reuse path's alternative to rebuilding the store (and
    /// re-deriving the 1 KB LUT) per image.
    pub fn reset(&mut self) {
        self.sums.fill(0);
        self.counts.fill(0);
        self.feedback.fill(0);
        self.halvings = 0;
    }

    /// Number of overflow-guard halvings performed so far.
    pub fn halvings(&self) -> u64 {
        self.halvings
    }

    /// The error-feedback value `ē = sum / count` for context `ctx`
    /// (0 for a context that has never been observed) — a single read of
    /// the cached feedback bank; the division happened in
    /// [`Self::update`].
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    #[inline]
    pub fn mean(&self, ctx: usize) -> i32 {
        i32::from(self.feedback[ctx])
    }

    /// Recomputes `sum / count` for one context (the divider stage).
    #[inline]
    fn divide(&self, ctx: usize) -> i32 {
        let count = u32::from(self.counts[ctx]);
        debug_assert!(count > 0);
        match self.division {
            DivisionKind::Lut => self.lut.div(self.sums[ctx], count),
            DivisionKind::Exact => exact_div(self.sums[ctx], count),
        }
    }

    /// Accumulates a (wrapped, signed) prediction error into context `ctx`.
    ///
    /// Implements the paper's Overflow Guard: when the count has reached
    /// its 5-bit maximum, both sum and count are halved before the update
    /// so the stored mean is preserved while the statistics age.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or `|err|` exceeds the store's
    /// error bound (128 for the 8-bit default).
    #[inline]
    pub fn update(&mut self, ctx: usize, err: i32) {
        assert!(
            err.abs() <= self.max_err,
            "wrapped error {err} out of range"
        );
        if self.counts[ctx] >= COUNT_MAX {
            if self.aging {
                // Arithmetic right shift keeps the mean's sign correct.
                self.sums[ctx] >>= 1;
                self.counts[ctx] >>= 1;
                self.halvings += 1;
            } else {
                return; // Saturate: stop learning (ablation variant).
            }
        }
        self.sums[ctx] += err;
        self.counts[ctx] += 1;
        self.feedback[ctx] = self.divide(ctx) as i16;
        // The paper's 13-bit sum bound holds for the 8-bit error range;
        // deeper samples get proportionally wider sums (still far inside
        // i32: 31 x 32768 < 2^21).
        debug_assert!(
            self.max_err > 128 || self.sums[ctx].abs() < 1 << 13,
            "13-bit sum bound violated"
        );
    }

    /// Raw `(sum, count)` of a context (tests/diagnostics).
    pub fn raw(&self, ctx: usize) -> (i32, u8) {
        (self.sums[ctx], self.counts[ctx])
    }

    /// Host bytes actually allocated by the three SoA banks
    /// (`i32` sums, `u8` counts, `i16` cached feedback) — the quantity
    /// `cbic_hw::memory::ContextBankLayout::host_soa` accounts, checked
    /// byte-for-byte by `tests/hardware.rs`.
    pub fn allocated_bytes(&self) -> usize {
        self.sums.len() * 4 + self.counts.len() + self.feedback.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(w: u16, ww: u16, n: u16, nn: u16, ne: u16, nw: u16, nne: u16) -> Neighborhood {
        Neighborhood {
            w,
            ww,
            n,
            nn,
            ne,
            nw,
            nne,
        }
    }

    #[test]
    fn quantizer_covers_all_eight_levels() {
        let mut seen = [false; 8];
        for delta in 0..2000 {
            seen[usize::from(quantize_energy(delta))] = true;
        }
        assert!(seen.iter().all(|&s| s), "levels: {seen:?}");
    }

    #[test]
    fn quantizer_is_monotone() {
        let mut prev = 0;
        for delta in 0..2000 {
            let q = quantize_energy(delta);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn quantizer_threshold_edges() {
        assert_eq!(quantize_energy(5), 0);
        assert_eq!(quantize_energy(6), 1);
        assert_eq!(quantize_energy(140), 6);
        assert_eq!(quantize_energy(141), 7);
    }

    #[test]
    fn texture_pattern_bits() {
        let n = nb(10, 200, 10, 200, 200, 10, 0);
        // prediction 100: N(10)<100 -> bit0, W(10)<100 -> bit1,
        // NW(10)<100 -> bit2, NE(200) -> 0, NN(200) -> 0, WW(200) -> 0.
        assert_eq!(texture_pattern(&n, 100, 6), 0b000111);
        assert_eq!(texture_pattern(&n, 100, 2), 0b11);
        assert_eq!(texture_pattern(&n, 100, 0), 0);
    }

    #[test]
    fn texture_pattern_is_strict_comparison() {
        let n = nb(100, 100, 100, 100, 100, 100, 100);
        assert_eq!(texture_pattern(&n, 100, 6), 0, "equal is not below");
        assert_eq!(texture_pattern(&n, 101, 6), 0b111111);
    }

    #[test]
    fn energy_combines_gradients_and_error() {
        let g = Gradients { dh: 10, dv: 20 };
        assert_eq!(error_energy(g, 5), 40);
    }

    #[test]
    fn fresh_context_mean_is_zero() {
        let s = ContextStore::new(512, DivisionKind::Exact, true);
        for c in [0usize, 100, 511] {
            assert_eq!(s.mean(c), 0);
        }
    }

    #[test]
    fn mean_tracks_bias() {
        let mut s = ContextStore::new(8, DivisionKind::Exact, true);
        for _ in 0..10 {
            s.update(3, 6);
        }
        assert_eq!(s.mean(3), 6);
        assert_eq!(s.raw(3), (60, 10));
    }

    #[test]
    fn lut_division_mean_is_close_to_exact() {
        let mut a = ContextStore::new(1, DivisionKind::Lut, true);
        let mut b = ContextStore::new(1, DivisionKind::Exact, true);
        for e in [14i32, 9, 17, 12, 11, 16, 13] {
            a.update(0, e);
            b.update(0, e);
        }
        assert!((a.mean(0) - b.mean(0)).abs() <= 2);
    }

    #[test]
    fn overflow_guard_halves_and_preserves_mean() {
        let mut s = ContextStore::new(1, DivisionKind::Exact, true);
        for _ in 0..31 {
            s.update(0, 8);
        }
        assert_eq!(s.raw(0), (248, 31));
        let mean_before = s.mean(0);
        s.update(0, 8); // triggers halving: (124, 15) then +8/+1
        assert_eq!(s.raw(0), (132, 16));
        assert_eq!(s.halvings(), 1);
        assert_eq!(s.mean(0), mean_before, "mean preserved through aging");
    }

    #[test]
    fn negative_sums_age_correctly() {
        let mut s = ContextStore::new(1, DivisionKind::Exact, true);
        for _ in 0..31 {
            s.update(0, -8);
        }
        s.update(0, -8);
        assert_eq!(s.mean(0), -8);
        // Arithmetic shift: -248 >> 1 = -124.
        assert_eq!(s.raw(0), (-132, 16));
    }

    #[test]
    fn saturating_variant_freezes() {
        let mut s = ContextStore::new(1, DivisionKind::Exact, false);
        for _ in 0..40 {
            s.update(0, 4);
        }
        assert_eq!(s.raw(0).1, COUNT_MAX, "count saturates without aging");
        assert_eq!(s.halvings(), 0);
    }

    #[test]
    fn sum_never_exceeds_13_bits() {
        let mut s = ContextStore::new(1, DivisionKind::Exact, true);
        for _ in 0..10_000 {
            s.update(0, 128);
        }
        assert!(s.raw(0).0 < 1 << 13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_error_rejected() {
        let mut s = ContextStore::new(1, DivisionKind::Exact, true);
        s.update(0, 129);
    }

    /// The LUT quantizer must equal the comparison-loop reference over the
    /// entire energy range reachable at any supported depth (post-shift
    /// `Δ ≤ 7·2⁸ − 6`; test far beyond it) plus the negative clamp.
    #[test]
    fn lut_quantizer_matches_reference_over_reachable_range() {
        for delta in -2048i32..=4096 {
            assert_eq!(
                quantize_energy(delta),
                quantize_energy_ref(delta),
                "delta {delta}"
            );
        }
        for delta in [i32::MIN, -1_000_000, 1_000_000, i32::MAX] {
            assert_eq!(quantize_energy(delta), quantize_energy_ref(delta));
        }
    }

    /// The cached feedback bank must always equal the lazily computed
    /// quotient of the current (sum, count) pair — for both dividers, with
    /// and without aging, through saturation and halving.
    #[test]
    fn cached_feedback_equals_lazy_mean() {
        for division in [DivisionKind::Lut, DivisionKind::Exact] {
            for aging in [true, false] {
                let mut s = ContextStore::new(4, division, aging);
                let mut state = 0x2545F491u32;
                for i in 0..5000u32 {
                    state ^= state << 13;
                    state ^= state >> 17;
                    state ^= state << 5;
                    let ctx = (i % 4) as usize;
                    let err = (state % 257) as i32 - 128;
                    s.update(ctx, err);
                    let (sum, count) = s.raw(ctx);
                    let lazy = match division {
                        DivisionKind::Lut => s.lut.div(sum, u32::from(count)),
                        DivisionKind::Exact => exact_div(sum, u32::from(count)),
                    };
                    assert_eq!(s.mean(ctx), lazy, "step {i} ctx {ctx} {division:?}");
                }
            }
        }
    }
}
