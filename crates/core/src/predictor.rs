//! Gradient computation and the simplified gradient-adjusted predictor.
//!
//! The paper's predictor is "inspired by the GAP (Gradient-Adjusted
//! Prediction) from CALIC" but restricted to addition/subtraction and
//! shifting so it maps directly onto the FPGA datapath. We use CALIC's
//! published edge thresholds (80 for sharp edges, 32/8 for weak edges);
//! every arithmetic step below is realizable as adds and shifts.
//!
//! The thresholds are calibrated to 8-bit intensity steps; for deeper
//! samples they are scaled by `2^(n-8)` (one barrel shift), so edge
//! classification behaves identically on an image and on its bit-shifted
//! deep copy, and the 8-bit path is bit-exact to the original.

use crate::neighborhood::Neighborhood;

/// Local gradient magnitudes, the paper's `dh` and `dv`.
///
/// `dh` accumulates horizontal intensity differences, `dv` vertical ones;
/// both are sums of three absolute differences of `n`-bit pixels, so they
/// fit in `n + 2` bits (0..=765 for the paper's 8-bit samples).
///
/// # Examples
///
/// ```
/// use cbic_core::neighborhood::Neighborhood;
/// use cbic_core::predictor::Gradients;
///
/// let flat = Neighborhood { w: 7, ww: 7, n: 7, nn: 7, ne: 7, nw: 7, nne: 7 };
/// let g = Gradients::compute(&flat);
/// assert_eq!((g.dh, g.dv), (0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gradients {
    /// Horizontal gradient magnitude `|W−WW| + |N−NW| + |N−NE|`.
    pub dh: i32,
    /// Vertical gradient magnitude `|W−NW| + |N−NN| + |NE−NNE|`.
    pub dv: i32,
}

impl Gradients {
    /// Computes `dh`/`dv` from the causal neighbourhood.
    #[inline]
    pub fn compute(n: &Neighborhood) -> Self {
        let d = |a: u16, b: u16| (i32::from(a) - i32::from(b)).abs();
        Self {
            dh: d(n.w, n.ww) + d(n.n, n.nw) + d(n.n, n.ne),
            dv: d(n.w, n.nw) + d(n.n, n.nn) + d(n.ne, n.nne),
        }
    }
}

/// CALIC's sharp-edge threshold (8-bit scale).
const T_SHARP: i32 = 80;
/// CALIC's strong-edge threshold (8-bit scale).
const T_STRONG: i32 = 32;
/// CALIC's weak-edge threshold (8-bit scale).
const T_WEAK: i32 = 8;

/// Threshold scale shift for an `n`-bit depth: thresholds grow by
/// `2^(n-8)` so they keep their meaning in deeper intensity ranges
/// (no-op at 8 bits and below).
#[inline]
pub fn threshold_shift(bit_depth: u8) -> u32 {
    u32::from(bit_depth.saturating_sub(8))
}

/// The gradient-adjusted primary prediction `X̂`, before error feedback,
/// for samples of the given bit depth.
///
/// Pure shift-and-add datapath: a sharp horizontal edge predicts `W`, a
/// sharp vertical edge predicts `N`, and in between the base prediction
/// `(W+N)/2 + (NE−NW)/4` is blended towards `W` or `N` according to the
/// gradient difference. The result is clamped to the `n`-bit pixel range.
///
/// # Examples
///
/// ```
/// use cbic_core::neighborhood::Neighborhood;
/// use cbic_core::predictor::{gap_predict, Gradients};
///
/// let flat = Neighborhood { w: 50, ww: 50, n: 50, nn: 50, ne: 50, nw: 50, nne: 50 };
/// assert_eq!(gap_predict(&flat, Gradients::compute(&flat), 8), 50);
///
/// let deep = Neighborhood {
///     w: 50_000, ww: 50_000, n: 50_000, nn: 50_000,
///     ne: 50_000, nw: 50_000, nne: 50_000,
/// };
/// assert_eq!(gap_predict(&deep, Gradients::compute(&deep), 16), 50_000);
/// ```
#[inline]
pub fn gap_predict(n: &Neighborhood, g: Gradients, bit_depth: u8) -> i32 {
    let shift = threshold_shift(bit_depth);
    let max_val = i32::from(cbic_image::max_val_for(bit_depth));
    let w = i32::from(n.w);
    let nn = i32::from(n.n);
    let ne = i32::from(n.ne);
    let nw = i32::from(n.nw);

    let diff = g.dv - g.dh;
    let pred = if diff > T_SHARP << shift {
        // Sharp horizontal edge: vertical gradient dominates.
        w
    } else if diff < -(T_SHARP << shift) {
        // Sharp vertical edge.
        nn
    } else {
        let base = (w + nn) / 2 + (ne - nw) / 4;
        if diff > T_STRONG << shift {
            (base + w) / 2
        } else if diff > T_WEAK << shift {
            (3 * base + w) / 4
        } else if diff < -(T_STRONG << shift) {
            (base + nn) / 2
        } else if diff < -(T_WEAK << shift) {
            (3 * base + nn) / 4
        } else {
            base
        }
    };
    pred.clamp(0, max_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(w: u16, ww: u16, n: u16, nn: u16, ne: u16, nw: u16, nne: u16) -> Neighborhood {
        Neighborhood {
            w,
            ww,
            n,
            nn,
            ne,
            nw,
            nne,
        }
    }

    #[test]
    fn flat_region_predicts_the_constant() {
        for v in [0u16, 1, 127, 255] {
            let n = nb(v, v, v, v, v, v, v);
            let g = Gradients::compute(&n);
            assert_eq!(g, Gradients { dh: 0, dv: 0 });
            assert_eq!(gap_predict(&n, g, 8), i32::from(v));
        }
    }

    #[test]
    fn sharp_horizontal_edge_predicts_w() {
        // Horizontal edge: rows above are dark, current row bright.
        // dh = 0, dv = 150: a sharp edge, so predict W.
        let n = nb(200, 200, 50, 50, 50, 50, 50);
        let g = Gradients::compute(&n);
        assert!(g.dv - g.dh > T_SHARP, "dv={} dh={}", g.dv, g.dh);
        assert_eq!(gap_predict(&n, g, 8), 200);
    }

    #[test]
    fn sharp_vertical_edge_predicts_n() {
        // Vertical edge between column x-1 and x: dh = 150, dv = 0,
        // so predict N (the pixel above, on our side of the edge).
        let n = nb(200, 200, 50, 50, 50, 200, 50);
        let g = Gradients::compute(&n);
        assert!(g.dh - g.dv > T_SHARP, "dv={} dh={}", g.dv, g.dh);
        assert_eq!(gap_predict(&n, g, 8), 50);
    }

    #[test]
    fn smooth_region_uses_planar_base() {
        // Gentle ramp: prediction should interpolate between W and N.
        let n = nb(100, 98, 104, 106, 106, 102, 108);
        let g = Gradients::compute(&n);
        let p = gap_predict(&n, g, 8);
        let base = (100 + 104) / 2 + (106 - 102) / 4;
        assert_eq!(p, base);
        assert!((100..=106).contains(&p));
    }

    #[test]
    fn weak_edge_blends_towards_w() {
        // dh = 0, dv = 30: diff in (8, 32], blend (3*base + w) / 4.
        let n = nb(100, 100, 110, 120, 110, 110, 120);
        let g = Gradients::compute(&n);
        assert!(
            g.dv - g.dh > T_WEAK && g.dv - g.dh <= T_STRONG,
            "diff {}",
            g.dv - g.dh
        );
        let base = (100 + 110) / 2; // (NE - NW) / 4 contributes nothing here
        assert_eq!(gap_predict(&n, g, 8), (3 * base + 100) / 4);
    }

    #[test]
    fn strong_edge_blends_half_w() {
        // dh = 0, dv = 80: diff in (32, 80], blend (base + w) / 2.
        let n = nb(100, 100, 130, 155, 130, 130, 155);
        let g = Gradients::compute(&n);
        assert!(
            g.dv - g.dh > T_STRONG && g.dv - g.dh <= T_SHARP,
            "diff {}",
            g.dv - g.dh
        );
        let base = (100 + 130) / 2;
        assert_eq!(gap_predict(&n, g, 8), (base + 100) / 2);
    }

    #[test]
    fn deep_edges_classify_like_scaled_eight_bit_ones() {
        // An 8-bit neighbourhood and its 256x-scaled 16-bit copy must pick
        // the same predictor branch: thresholds scale with the depth.
        let cases = [
            nb(200, 200, 50, 50, 50, 50, 50),      // sharp horizontal
            nb(200, 200, 50, 50, 50, 200, 50),     // sharp vertical
            nb(100, 100, 110, 120, 110, 110, 120), // weak
            nb(100, 98, 104, 106, 106, 102, 108),  // planar
        ];
        for c in cases {
            let scale = |v: u16| v << 8;
            let deep = nb(
                scale(c.w),
                scale(c.ww),
                scale(c.n),
                scale(c.nn),
                scale(c.ne),
                scale(c.nw),
                scale(c.nne),
            );
            let p8 = gap_predict(&c, Gradients::compute(&c), 8);
            let p16 = gap_predict(&deep, Gradients::compute(&deep), 16);
            // The scaled prediction keeps fractional precision the 8-bit
            // path truncated away, so compare at 8-bit resolution.
            assert_eq!(p16 >> 8, p8, "{c:?}");
        }
    }

    #[test]
    fn prediction_is_always_in_pixel_range() {
        // Exhaustive-ish sweep over extreme corners.
        let vals = [0u16, 1, 127, 128, 254, 255];
        for &w in &vals {
            for &n_ in &vals {
                for &ne in &vals {
                    for &nw in &vals {
                        let n = nb(w, w, n_, n_, ne, nw, ne);
                        let g = Gradients::compute(&n);
                        let p = gap_predict(&n, g, 8);
                        assert!((0..=255).contains(&p), "pred {p} out of range");
                    }
                }
            }
        }
        let deep = [0u16, 1, 32767, 32768, 65534, 65535];
        for &w in &deep {
            for &n_ in &deep {
                let n = nb(w, w, n_, n_, n_, w, n_);
                let g = Gradients::compute(&n);
                let p = gap_predict(&n, g, 16);
                assert!((0..=65535).contains(&p), "pred {p} out of 16-bit range");
            }
        }
    }

    #[test]
    fn gradients_fit_ten_bits_at_eight_bit_depth() {
        let n = nb(255, 0, 0, 255, 255, 0, 0);
        let g = Gradients::compute(&n);
        assert!(g.dh <= 765 && g.dv <= 765);
    }
}
