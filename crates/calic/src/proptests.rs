//! Property-based tests: CALIC losslessness over arbitrary images and
//! configurations.

use proptest::prelude::*;

use crate::codec::{decode_raw, encode_raw, CalicConfig};
use cbic_arith::EstimatorConfig;
use cbic_image::Image;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..20, 1usize..20).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

proptest! {
    /// Arbitrary pixels round-trip under the default configuration.
    #[test]
    fn roundtrip_arbitrary_images(img in arb_image()) {
        let cfg = CalicConfig::default();
        let (bytes, _) = encode_raw(img.view(), &cfg);
        prop_assert_eq!(decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), &cfg), img);
    }

    /// Arbitrary configurations (count caps, estimator widths) round-trip.
    #[test]
    fn roundtrip_arbitrary_configs(
        img in arb_image(),
        cap in 1u16..=1024,
        count_bits in 10u8..=16,
        increment in 1u16..=64,
    ) {
        let cfg = CalicConfig {
            estimator: EstimatorConfig { count_bits, increment, ..EstimatorConfig::default() },
            count_cap: cap,
        };
        let (bytes, _) = encode_raw(img.view(), &cfg);
        prop_assert_eq!(decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), &cfg), img);
    }

    /// The sign-flipping trick is an involution: encoder and decoder agree
    /// on every flip, so stats match exactly.
    #[test]
    fn encoder_decoder_stats_agree(img in arb_image()) {
        let cfg = CalicConfig::default();
        let (bytes, enc_stats) = encode_raw(img.view(), &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), &cfg);
        prop_assert_eq!(back, img);
        prop_assert!(enc_stats.payload_bits <= bytes.len() as u64 * 8);
    }
}
