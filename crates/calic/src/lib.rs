//! CALIC baseline codec (Wu & Memon, IEEE Trans. Communications 1997 —
//! the paper's reference \[3\]).
//!
//! CALIC is the state-of-the-art software scheme the paper measures itself
//! against: the proposed hardware codec deliberately trades a little
//! compression (512 vs CALIC's larger context set) for implementability.
//! This crate implements continuous-tone CALIC with:
//!
//! * the full **GAP** predictor (shared with `cbic-core`, which inherited
//!   it from CALIC in the first place);
//! * an **8-event texture pattern** `{N, W, NW, NE, NN, WW, 2N−NN, 2W−WW}`
//!   compared against the prediction — twice the events of the hardware
//!   codec's 6;
//! * **1024 compound contexts** (256 texture patterns × 4 quantized error
//!   energies) for error feedback with 8-bit counts and exact division —
//!   richer and more precise than the hardware codec's 512 contexts with
//!   5-bit counts and LUT division;
//! * adaptive arithmetic coding of the remapped errors conditioned on the
//!   8 quantized error-energy contexts (same entropy back end as the rest
//!   of the workspace).
//!
//! Binary (bi-level) mode of full CALIC is not implemented; on the
//! continuous-tone corpus it rarely engages (DESIGN.md §6).
//!
//! # Examples
//!
//! ```
//! use cbic_calic::{compress, decompress};
//! use cbic_image::corpus::CorpusImage;
//!
//! let img = CorpusImage::Peppers.generate(48, 48);
//! let bytes = compress(img.view());
//! assert_eq!(decompress(&bytes)?, img);
//! # Ok::<(), cbic_calic::CalicError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;

#[cfg(test)]
mod proptests;

pub use codec::{decode_raw, encode_raw, CalicConfig, EncodeStats};

use cbic_image::framing::{self, FramingError};
use cbic_image::{Image, ImageView};
use std::fmt;

/// Errors returned by the container API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CalicError {
    /// Stream does not start with the `CBCA` magic.
    BadMagic,
    /// Stream shorter than a header.
    Truncated,
    /// A header field is invalid.
    InvalidHeader(String),
}

impl fmt::Display for CalicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBCA magic"),
            Self::Truncated => write!(f, "truncated stream"),
            Self::InvalidHeader(m) => write!(f, "invalid header: {m}"),
        }
    }
}

impl std::error::Error for CalicError {}

impl From<CalicError> for cbic_image::CbicError {
    fn from(e: CalicError) -> Self {
        use cbic_image::CbicError;
        match e {
            CalicError::BadMagic => CbicError::BadMagic { found: None },
            CalicError::Truncated => CbicError::Truncated,
            CalicError::InvalidHeader(msg) => CbicError::InvalidContainer(msg),
        }
    }
}

const MAGIC: &[u8; 4] = b"CBCA";

impl From<FramingError> for CalicError {
    fn from(e: FramingError) -> Self {
        match e {
            FramingError::BadMagic => CalicError::BadMagic,
            FramingError::Truncated => CalicError::Truncated,
            FramingError::Invalid(msg) => CalicError::InvalidHeader(msg),
        }
    }
}

/// This crate's container framing — the shared dimensioned header of
/// [`cbic_image::framing`] (legacy 8-bit layout, deep-sentinel extension)
/// followed directly by the payload — written once here so [`compress`]
/// and the [`cbic_image::Codec`] impl cannot drift apart.
fn write_container(
    img: ImageView<'_>,
    payload: &[u8],
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    framing::write_dims_header(out, MAGIC, img.width(), img.height(), img.bit_depth())?;
    out.write_all(payload)
}

/// Parses this crate's container framing, returning
/// `(width, height, bit_depth, payload)`. Shared by [`decompress`] and
/// the CLI's `info` reporting.
pub fn parse_container(bytes: &[u8]) -> Result<(usize, usize, u8, &[u8]), CalicError> {
    Ok(framing::parse_dims_header(bytes, MAGIC)?)
}

/// Compresses the pixels of a view with the default CALIC configuration
/// into a self-describing container.
pub fn compress(img: ImageView<'_>) -> Vec<u8> {
    let (payload, _) = encode_raw(img, &CalicConfig::default());
    let mut out = Vec::with_capacity(payload.len() + 17);
    write_container(img, &payload, &mut out).expect("Vec writes cannot fail");
    out
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns [`CalicError`] on malformed headers.
pub fn decompress(bytes: &[u8]) -> Result<Image, CalicError> {
    let (width, height, bit_depth, payload) = parse_container(bytes)?;
    Ok(decode_raw(
        payload,
        width,
        height,
        bit_depth,
        &CalicConfig::default(),
    ))
}

/// CALIC on the unified [`cbic_image::Codec`] surface.
///
/// The encode path writes the container straight to the sink and reports
/// the exact payload bits from the same pass, so size queries cost one
/// encode. Decoding buffers the source (the CALIC model is not
/// incremental), consuming it to end-of-stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct Calic;

impl cbic_image::Codec for Calic {
    fn name(&self) -> &'static str {
        "calic"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    fn encode(
        &self,
        img: ImageView<'_>,
        _opts: &cbic_image::EncodeOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<cbic_image::EncodeStats, cbic_image::CbicError> {
        let (payload, stats) = encode_raw(img, &CalicConfig::default());
        write_container(img, &payload, sink)?;
        Ok(cbic_image::EncodeStats::new(
            stats.pixels,
            framing::dims_header_len(img.bit_depth()) + payload.len() as u64,
            Some(stats.payload_bits),
        ))
    }

    fn decode(
        &self,
        source: &mut dyn std::io::Read,
        _opts: &cbic_image::DecodeOptions,
    ) -> Result<Image, cbic_image::CbicError> {
        let mut bytes = Vec::new();
        source.read_to_end(&mut bytes)?;
        decompress(&bytes).map_err(cbic_image::CbicError::from)
    }
}

#[cfg(test)]
mod container_tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    #[test]
    fn container_roundtrip() {
        let img = CorpusImage::Boat.generate(32, 32);
        assert_eq!(decompress(&compress(img.view())).unwrap(), img);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decompress(b"xx"), Err(CalicError::Truncated));
        assert_eq!(decompress(b"AAAA00000000"), Err(CalicError::BadMagic));
    }
}
