//! The CALIC continuous-tone coding flow, at 8–16-bit sample depths.

use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig};
use cbic_bitio::{BitReader, BitWriter};
use cbic_core::codec::SampleCoder;
use cbic_core::context::QE_THRESHOLDS;
use cbic_core::neighborhood::Neighborhood;
use cbic_core::predictor::{gap_predict, threshold_shift, Gradients};
use cbic_core::remap::{fold, half_for_depth, reconstruct, unfold, wrap_error};
use cbic_image::{Image, ImageView, ImageViewMut};

/// Number of entropy-coding contexts. Software CALIC is not bound by the
/// hardware codec's 8-tree SRAM budget; a finer 16-level error-energy
/// quantizer buys the extra conditional-entropy margin the paper reports
/// for CALIC.
pub const CODING_CONTEXTS: usize = 16;
/// Texture events: 256 patterns from 8 comparisons.
const TEXTURE_PATTERNS: usize = 256;
/// Error-energy levels used in the compound modeling contexts.
const ENERGY_LEVELS: usize = 4;
/// Compound contexts for bias cancellation (256 × 4 = 1024; the paper
/// quotes 576 *reachable* contexts in CALIC — the 2N−NN / 2W−WW events are
/// correlated with the rest, so many patterns never occur).
const COMPOUND_CONTEXTS: usize = TEXTURE_PATTERNS * ENERGY_LEVELS;

/// CALIC configuration.
///
/// # Examples
///
/// ```
/// use cbic_calic::CalicConfig;
///
/// let cfg = CalicConfig::default();
/// assert_eq!(cfg.count_cap, 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalicConfig {
    /// Probability-estimator tuning for the arithmetic back end.
    pub estimator: EstimatorConfig,
    /// Feedback count saturation (CALIC uses full 8-bit counts; the
    /// hardware codec of `cbic-core` can only afford 5 bits).
    pub count_cap: u16,
}

impl Default for CalicConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            count_cap: 255,
        }
    }
}

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced.
    pub payload_bits: u64,
    /// Symbols escaped to the static tree.
    pub escapes: u64,
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }
}

/// Per-context error statistics with 8-bit counts and exact division.
#[derive(Debug, Clone)]
struct FeedbackStore {
    sums: Vec<i32>,
    counts: Vec<u16>,
    cap: u16,
    /// Mean magnitude clamp: `2^(n-1)` for `n`-bit samples (never binds at
    /// 8 bits, where |mean| ≤ 128).
    max_mean: i32,
}

impl FeedbackStore {
    fn new(contexts: usize, cap: u16, max_mean: i32) -> Self {
        Self {
            sums: vec![0; contexts],
            counts: vec![0; contexts],
            cap,
            max_mean,
        }
    }

    #[inline]
    fn mean(&self, ctx: usize) -> i32 {
        let c = self.counts[ctx];
        if c == 0 {
            0
        } else {
            // Truncating division towards zero, like the hardware reference.
            let s = self.sums[ctx];
            let q = (s.abs() / i32::from(c)).min(self.max_mean);
            if s < 0 {
                -q
            } else {
                q
            }
        }
    }

    #[inline]
    fn sum(&self, ctx: usize) -> i32 {
        self.sums[ctx]
    }

    #[inline]
    fn update(&mut self, ctx: usize, err: i32) {
        if self.counts[ctx] >= self.cap {
            self.sums[ctx] >>= 1;
            self.counts[ctx] >>= 1;
        }
        self.sums[ctx] += err;
        self.counts[ctx] += 1;
    }
}

/// The 8-event texture pattern: `{N, W, NW, NE, NN, WW, 2N−NN, 2W−WW}`
/// each compared against the prediction.
#[inline]
fn texture8(n: &Neighborhood, prediction: i32) -> usize {
    let e = [
        i32::from(n.n),
        i32::from(n.w),
        i32::from(n.nw),
        i32::from(n.ne),
        i32::from(n.nn),
        i32::from(n.ww),
        2 * i32::from(n.n) - i32::from(n.nn),
        2 * i32::from(n.w) - i32::from(n.ww),
    ];
    let mut t = 0usize;
    for (k, &v) in e.iter().enumerate() {
        if v < prediction {
            t |= 1 << k;
        }
    }
    t
}

/// 16-level error-energy quantizer for the entropy-coding contexts
/// (interleaves midpoints into the 8-level CALIC threshold ladder).
#[inline]
fn quantize_energy16(delta: i32) -> usize {
    const T16: [i32; 15] = [2, 5, 9, 15, 20, 25, 33, 42, 50, 60, 72, 85, 110, 140, 220];
    let mut q = 0;
    for &t in &T16 {
        if delta > t {
            q += 1;
        }
    }
    q
}

/// Quantizes the error energy to the 4 compound-context levels (a coarser
/// cut of the same threshold ladder used for the coding contexts).
#[inline]
fn quantize_energy4(delta: i32) -> usize {
    let mut q = 0;
    for &t in &[QE_THRESHOLDS[1], QE_THRESHOLDS[3], QE_THRESHOLDS[5]] {
        if delta > t {
            q += 1;
        }
    }
    q
}

struct Modeler {
    store: FeedbackStore,
    abs_err: Vec<u16>,
    bit_depth: u8,
    half: i32,
    energy_shift: u32,
}

struct PixelModel {
    qe: usize,
    ctx: usize,
    x_tilde: i32,
    /// CALIC's sign-flipping: when the context's accumulated error sum is
    /// negative, the error is negated before coding so that symmetric
    /// contexts share one (better-estimated) conditional distribution.
    flip: bool,
}

impl Modeler {
    fn new(width: usize, bit_depth: u8, cfg: &CalicConfig) -> Self {
        let half = half_for_depth(bit_depth);
        Self {
            store: FeedbackStore::new(COMPOUND_CONTEXTS, cfg.count_cap, half),
            abs_err: vec![0; width],
            bit_depth,
            half,
            energy_shift: threshold_shift(bit_depth),
        }
    }

    fn model(&self, nb: &Neighborhood, x: usize) -> PixelModel {
        let g = Gradients::compute(nb);
        let x_hat = gap_predict(nb, g, self.bit_depth);
        let e_w = i32::from(if x > 0 {
            self.abs_err[x - 1]
        } else {
            self.abs_err[0]
        });
        let delta = (g.dh + g.dv + 2 * e_w) >> self.energy_shift;
        let qe = quantize_energy16(delta);
        let ctx = (quantize_energy4(delta) << 8) | texture8(nb, x_hat);
        let x_tilde = (x_hat + self.store.mean(ctx)).clamp(0, 2 * self.half - 1);
        let flip = self.store.sum(ctx) < 0;
        PixelModel {
            qe,
            ctx,
            x_tilde,
            flip,
        }
    }

    fn absorb(&mut self, x: usize, ctx: usize, wrapped: i32) {
        self.store.update(ctx, wrapped);
        self.abs_err[x] = wrapped.unsigned_abs().min(u32::from(u16::MAX)) as u16;
    }

    #[inline]
    fn mid(&self) -> u16 {
        self.half as u16
    }
}

/// Encodes the pixels of `img`, returning the raw payload and statistics.
pub fn encode_raw(img: ImageView<'_>, cfg: &CalicConfig) -> (Vec<u8>, EncodeStats) {
    let (width, height) = img.dimensions();
    let mut modeler = Modeler::new(width, img.bit_depth(), cfg);
    let half = modeler.half;
    let mut coder = SampleCoder::new(CODING_CONTEXTS, img.bit_depth(), cfg.estimator);
    let mut enc = BinaryEncoder::new(BitWriter::new());

    for y in 0..height {
        let cur = img.row(y);
        let n1 = (y >= 1).then(|| img.row(y - 1));
        let n2 = (y >= 2).then(|| img.row(y - 2));
        for x in 0..width {
            let nb = Neighborhood::from_rows(cur, n1, n2, x, modeler.mid());
            let m = modeler.model(&nb, x);
            let wrapped = wrap_error(i32::from(cur[x]) - m.x_tilde, half);
            let coded = if m.flip {
                wrap_error(-wrapped, half)
            } else {
                wrapped
            };
            coder.encode(&mut enc, m.qe, fold(coded, half));
            modeler.absorb(x, m.ctx, wrapped);
        }
    }

    let payload_bits = enc.bits_written();
    let coder_stats = coder.stats();
    let writer = enc.finish();
    let stats = EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: payload_bits.max(writer.bits_written()),
        escapes: coder_stats.escapes,
    };
    (writer.into_bytes(), stats)
}

/// Decodes a payload produced by [`encode_raw`] with matching dimensions,
/// bit depth, and configuration.
pub fn decode_raw(
    bytes: &[u8],
    width: usize,
    height: usize,
    bit_depth: u8,
    cfg: &CalicConfig,
) -> Image {
    let mut modeler = Modeler::new(width, bit_depth, cfg);
    let half = modeler.half;
    let mut coder = SampleCoder::new(CODING_CONTEXTS, bit_depth, cfg.estimator);
    let mut dec = BinaryDecoder::new(BitReader::new(bytes));
    let mut img = Image::with_depth(width, height, bit_depth);
    let mut out: ImageViewMut<'_> = img.view_mut();

    for y in 0..height {
        let (n2, n1, cur) = out.causal_rows_mut(y);
        for x in 0..width {
            let nb = Neighborhood::from_rows(cur, n1, n2, x, modeler.mid());
            let m = modeler.model(&nb, x);
            let coded = unfold(coder.decode(&mut dec, m.qe));
            let wrapped = if m.flip {
                wrap_error(-coded, half)
            } else {
                coded
            };
            cur[x] = reconstruct(m.x_tilde, wrapped, half);
            modeler.absorb(x, m.ctx, wrapped);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image) -> EncodeStats {
        let cfg = CalicConfig::default();
        let (bytes, stats) = encode_raw(img.view(), &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), img.bit_depth(), &cfg);
        assert_eq!(&back, img, "lossless roundtrip failed");
        stats
    }

    #[test]
    fn roundtrip_corpus() {
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img);
            assert!(stats.payload_bits > 0, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny() {
        for (w, h) in [(1, 1), (1, 7), (7, 1), (5, 3)] {
            roundtrip(&Image::from_fn(w, h, |x, y| (x * 41 + y * 13) as u8));
        }
    }

    #[test]
    fn roundtrip_deep_depths() {
        for depth in [10u8, 12, 16] {
            let img = Image::from_fn16(20, 20, depth, |x, y| {
                ((x as u32 * 887 + y as u32 * 4099) % (1u32 << depth.min(15))) as u16
            });
            roundtrip(&img);
        }
    }

    #[test]
    fn strided_views_encode_identically() {
        let img = CorpusImage::Boat.generate(32, 32);
        let window = img.view().crop(4, 6, 20, 18);
        let cfg = CalicConfig::default();
        let (v, _) = encode_raw(window, &cfg);
        let (c, _) = encode_raw(window.to_image().view(), &cfg);
        assert_eq!(v, c);
    }

    #[test]
    fn texture8_uses_all_eight_events() {
        // A neighbourhood where only the virtual events (2N−NN, 2W−WW)
        // fall below the prediction.
        let nb = Neighborhood {
            n: 100,
            w: 100,
            nw: 100,
            ne: 100,
            nn: 120,
            ww: 120,
            nne: 100,
        };
        // 2N−NN = 80, 2W−WW = 80 < 99; everything else >= 99.
        let t = texture8(&nb, 99);
        assert_eq!(t, 0b1100_0000);
    }

    #[test]
    fn energy_quantizers_are_monotone_and_cover_all_levels() {
        let mut prev16 = 0;
        let mut seen16 = [false; 16];
        for delta in 0..2000 {
            let q16 = quantize_energy16(delta);
            assert!(q16 >= prev16);
            prev16 = q16;
            seen16[q16] = true;
            assert!(quantize_energy4(delta) <= q16);
        }
        assert!(seen16.iter().all(|&s| s));
        assert_eq!(quantize_energy4(0), 0);
        assert_eq!(quantize_energy4(1000), 3);
    }

    #[test]
    fn feedback_store_saturates_at_cap() {
        let mut s = FeedbackStore::new(4, 255, 128);
        for _ in 0..1000 {
            s.update(2, 10);
        }
        assert!(s.counts[2] <= 255);
        assert_eq!(s.mean(2), 10);
    }

    #[test]
    fn constant_image_compresses_hard() {
        let stats = roundtrip(&Image::from_fn(96, 96, |_, _| 31));
        assert!(stats.bits_per_pixel() < 0.2);
    }

    #[test]
    fn calic_beats_order0_entropy() {
        let img = CorpusImage::Lena.generate(96, 96);
        let stats = roundtrip(&img);
        assert!(stats.bits_per_pixel() < img.entropy());
    }
}
