//! The CALIC continuous-tone coding flow.

use cbic_arith::{BinaryDecoder, BinaryEncoder, EstimatorConfig, SymbolCoder};
use cbic_bitio::{BitReader, BitWriter};
use cbic_core::context::QE_THRESHOLDS;
use cbic_core::neighborhood::Neighborhood;
use cbic_core::predictor::{gap_predict, Gradients};
use cbic_core::remap::{fold, reconstruct, unfold, wrap_error};
use cbic_image::Image;

/// Number of entropy-coding contexts. Software CALIC is not bound by the
/// hardware codec's 8-tree SRAM budget; a finer 16-level error-energy
/// quantizer buys the extra conditional-entropy margin the paper reports
/// for CALIC.
pub const CODING_CONTEXTS: usize = 16;
/// Texture events: 256 patterns from 8 comparisons.
const TEXTURE_PATTERNS: usize = 256;
/// Error-energy levels used in the compound modeling contexts.
const ENERGY_LEVELS: usize = 4;
/// Compound contexts for bias cancellation (256 × 4 = 1024; the paper
/// quotes 576 *reachable* contexts in CALIC — the 2N−NN / 2W−WW events are
/// correlated with the rest, so many patterns never occur).
const COMPOUND_CONTEXTS: usize = TEXTURE_PATTERNS * ENERGY_LEVELS;

/// CALIC configuration.
///
/// # Examples
///
/// ```
/// use cbic_calic::CalicConfig;
///
/// let cfg = CalicConfig::default();
/// assert_eq!(cfg.count_cap, 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalicConfig {
    /// Probability-estimator tuning for the arithmetic back end.
    pub estimator: EstimatorConfig,
    /// Feedback count saturation (CALIC uses full 8-bit counts; the
    /// hardware codec of `cbic-core` can only afford 5 bits).
    pub count_cap: u16,
}

impl Default for CalicConfig {
    fn default() -> Self {
        Self {
            estimator: EstimatorConfig::default(),
            count_cap: 255,
        }
    }
}

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced.
    pub payload_bits: u64,
    /// Symbols escaped to the static tree.
    pub escapes: u64,
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }
}

/// Per-context error statistics with 8-bit counts and exact division.
#[derive(Debug, Clone)]
struct FeedbackStore {
    sums: Vec<i32>,
    counts: Vec<u16>,
    cap: u16,
}

impl FeedbackStore {
    fn new(contexts: usize, cap: u16) -> Self {
        Self {
            sums: vec![0; contexts],
            counts: vec![0; contexts],
            cap,
        }
    }

    #[inline]
    fn mean(&self, ctx: usize) -> i32 {
        let c = self.counts[ctx];
        if c == 0 {
            0
        } else {
            // Truncating division towards zero, like the hardware reference.
            let s = self.sums[ctx];
            let q = (s.abs() / i32::from(c)).min(255);
            if s < 0 {
                -q
            } else {
                q
            }
        }
    }

    #[inline]
    fn sum(&self, ctx: usize) -> i32 {
        self.sums[ctx]
    }

    #[inline]
    fn update(&mut self, ctx: usize, err: i32) {
        if self.counts[ctx] >= self.cap {
            self.sums[ctx] >>= 1;
            self.counts[ctx] >>= 1;
        }
        self.sums[ctx] += err;
        self.counts[ctx] += 1;
    }
}

/// The 8-event texture pattern: `{N, W, NW, NE, NN, WW, 2N−NN, 2W−WW}`
/// each compared against the prediction.
#[inline]
fn texture8(n: &Neighborhood, prediction: i32) -> usize {
    let e = [
        i32::from(n.n),
        i32::from(n.w),
        i32::from(n.nw),
        i32::from(n.ne),
        i32::from(n.nn),
        i32::from(n.ww),
        2 * i32::from(n.n) - i32::from(n.nn),
        2 * i32::from(n.w) - i32::from(n.ww),
    ];
    let mut t = 0usize;
    for (k, &v) in e.iter().enumerate() {
        if v < prediction {
            t |= 1 << k;
        }
    }
    t
}

/// 16-level error-energy quantizer for the entropy-coding contexts
/// (interleaves midpoints into the 8-level CALIC threshold ladder).
#[inline]
fn quantize_energy16(delta: i32) -> usize {
    const T16: [i32; 15] = [2, 5, 9, 15, 20, 25, 33, 42, 50, 60, 72, 85, 110, 140, 220];
    let mut q = 0;
    for &t in &T16 {
        if delta > t {
            q += 1;
        }
    }
    q
}

/// Quantizes the error energy to the 4 compound-context levels (a coarser
/// cut of the same threshold ladder used for the coding contexts).
#[inline]
fn quantize_energy4(delta: i32) -> usize {
    let mut q = 0;
    for &t in &[QE_THRESHOLDS[1], QE_THRESHOLDS[3], QE_THRESHOLDS[5]] {
        if delta > t {
            q += 1;
        }
    }
    q
}

struct Modeler {
    store: FeedbackStore,
    abs_err: Vec<u8>,
}

struct PixelModel {
    qe: usize,
    ctx: usize,
    x_tilde: i32,
    /// CALIC's sign-flipping: when the context's accumulated error sum is
    /// negative, the error is negated before coding so that symmetric
    /// contexts share one (better-estimated) conditional distribution.
    flip: bool,
}

impl Modeler {
    fn new(width: usize, cfg: &CalicConfig) -> Self {
        Self {
            store: FeedbackStore::new(COMPOUND_CONTEXTS, cfg.count_cap),
            abs_err: vec![0; width],
        }
    }

    fn model(&self, img: &Image, x: usize, y: usize) -> PixelModel {
        let nb = Neighborhood::fetch(img, x, y);
        let g = Gradients::compute(&nb);
        let x_hat = gap_predict(&nb, g);
        let e_w = i32::from(if x > 0 {
            self.abs_err[x - 1]
        } else {
            self.abs_err[0]
        });
        let delta = g.dh + g.dv + 2 * e_w;
        let qe = quantize_energy16(delta);
        let ctx = (quantize_energy4(delta) << 8) | texture8(&nb, x_hat);
        let x_tilde = (x_hat + self.store.mean(ctx)).clamp(0, 255);
        let flip = self.store.sum(ctx) < 0;
        PixelModel {
            qe,
            ctx,
            x_tilde,
            flip,
        }
    }

    fn absorb(&mut self, x: usize, ctx: usize, wrapped: i32) {
        self.store.update(ctx, wrapped);
        self.abs_err[x] = wrapped.unsigned_abs().min(255) as u8;
    }
}

/// Encodes `img`, returning the raw payload and statistics.
pub fn encode_raw(img: &Image, cfg: &CalicConfig) -> (Vec<u8>, EncodeStats) {
    let (width, height) = img.dimensions();
    let mut modeler = Modeler::new(width, cfg);
    let mut coder = SymbolCoder::new(CODING_CONTEXTS, cfg.estimator);
    let mut enc = BinaryEncoder::new(BitWriter::new());

    for y in 0..height {
        for x in 0..width {
            let m = modeler.model(img, x, y);
            let wrapped = wrap_error(i32::from(img.get(x, y)) - m.x_tilde);
            let coded = if m.flip {
                wrap_error(-wrapped)
            } else {
                wrapped
            };
            coder.encode(&mut enc, m.qe, fold(coded));
            modeler.absorb(x, m.ctx, wrapped);
        }
    }

    let payload_bits = enc.bits_written();
    let coder_stats = coder.stats();
    let writer = enc.finish();
    let stats = EncodeStats {
        pixels: (width * height) as u64,
        payload_bits: payload_bits.max(writer.bits_written()),
        escapes: coder_stats.escapes,
    };
    (writer.into_bytes(), stats)
}

/// Decodes a payload produced by [`encode_raw`] with matching dimensions
/// and configuration.
pub fn decode_raw(bytes: &[u8], width: usize, height: usize, cfg: &CalicConfig) -> Image {
    let mut modeler = Modeler::new(width, cfg);
    let mut coder = SymbolCoder::new(CODING_CONTEXTS, cfg.estimator);
    let mut dec = BinaryDecoder::new(BitReader::new(bytes));
    let mut img = Image::new(width, height);

    for y in 0..height {
        for x in 0..width {
            let m = modeler.model(&img, x, y);
            let coded = unfold(coder.decode(&mut dec, m.qe));
            let wrapped = if m.flip { wrap_error(-coded) } else { coded };
            img.set(x, y, reconstruct(m.x_tilde, wrapped));
            modeler.absorb(x, m.ctx, wrapped);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image) -> EncodeStats {
        let cfg = CalicConfig::default();
        let (bytes, stats) = encode_raw(img, &cfg);
        let back = decode_raw(&bytes, img.width(), img.height(), &cfg);
        assert_eq!(&back, img, "lossless roundtrip failed");
        stats
    }

    #[test]
    fn roundtrip_corpus() {
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img);
            assert!(stats.payload_bits > 0, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny() {
        for (w, h) in [(1, 1), (1, 7), (7, 1), (5, 3)] {
            roundtrip(&Image::from_fn(w, h, |x, y| (x * 41 + y * 13) as u8));
        }
    }

    #[test]
    fn texture8_uses_all_eight_events() {
        // A neighbourhood where only the virtual events (2N−NN, 2W−WW)
        // fall below the prediction.
        let nb = Neighborhood {
            n: 100,
            w: 100,
            nw: 100,
            ne: 100,
            nn: 120,
            ww: 120,
            nne: 100,
        };
        // 2N−NN = 80, 2W−WW = 80 < 99; everything else >= 99.
        let t = texture8(&nb, 99);
        assert_eq!(t, 0b1100_0000);
    }

    #[test]
    fn energy_quantizers_are_monotone_and_cover_all_levels() {
        let mut prev16 = 0;
        let mut seen16 = [false; 16];
        for delta in 0..2000 {
            let q16 = quantize_energy16(delta);
            assert!(q16 >= prev16);
            prev16 = q16;
            seen16[q16] = true;
            assert!(quantize_energy4(delta) <= q16);
        }
        assert!(seen16.iter().all(|&s| s));
        assert_eq!(quantize_energy4(0), 0);
        assert_eq!(quantize_energy4(1000), 3);
    }

    #[test]
    fn feedback_store_saturates_at_cap() {
        let mut s = FeedbackStore::new(4, 255);
        for _ in 0..1000 {
            s.update(2, 10);
        }
        assert!(s.counts[2] <= 255);
        assert_eq!(s.mean(2), 10);
    }

    #[test]
    fn constant_image_compresses_hard() {
        let stats = roundtrip(&Image::from_fn(96, 96, |_, _| 31));
        assert!(stats.bits_per_pixel() < 0.2);
    }

    #[test]
    fn calic_beats_order0_entropy() {
        let img = CorpusImage::Lena.generate(96, 96);
        let stats = roundtrip(&img);
        assert!(stats.bits_per_pixel() < img.entropy());
    }
}
