//! Lock-free service metrics: a fixed set of atomic counters rendered as
//! Prometheus-style text (the METRICS op) and as a one-line stderr
//! summary (the periodic reporter thread).
//!
//! Everything is `Relaxed` atomics — the counters are monotonic tallies
//! read for human consumption, not synchronization points on the request
//! path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Upper edges of the encode bit-rate histogram, in bits per pixel.
/// The final implicit bucket is `+Inf`.
pub const BPP_BUCKETS: [f64; 6] = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0];

/// Upper edges of the per-operation latency histograms, in microseconds
/// (doubling from 250 µs to 32 ms — a 64×64 encode lands near the bottom,
/// a 4K frame near the top). The final implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 8] = [250, 500, 1000, 2000, 4000, 8000, 16000, 32000];

/// One latency histogram: per-bucket counts plus the running sum and
/// count, all `Relaxed` atomics (same discipline as the rest of the
/// registry — tallies, not synchronization).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// Count per [`LATENCY_BUCKETS_US`] bucket, plus the trailing `+Inf`.
    pub buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    /// Sum of all observed latencies, in microseconds.
    pub sum_us: AtomicU64,
    /// Number of observations.
    pub count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn observe_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Mean observed latency in microseconds (zero before the first
    /// observation).
    pub fn mean_us(&self) -> f64 {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return 0.0;
        }
        self.sum_us.load(Relaxed) as f64 / count as f64
    }

    /// Renders the histogram in Prometheus text format under `name`
    /// (seconds-free: bucket edges and sum stay in microseconds, and the
    /// unit is in the name as the convention requires).
    fn render_into(&self, out: &mut String, name: &str, help: &str) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Relaxed);
            let le = LATENCY_BUCKETS_US
                .get(i)
                .map_or("+Inf".to_string(), u64::to_string);
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", self.sum_us.load(Relaxed)));
        out.push_str(&format!("{name}_count {}\n", self.count.load(Relaxed)));
    }
}

/// The service's counter registry. One instance is shared (via `Arc`) by
/// the accept loop, every worker, and the reporter thread.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones later refused as busy).
    pub connections: AtomicU64,
    /// Requests answered [`Status::Busy`](crate::protocol::Status::Busy)
    /// because the work queue was full.
    pub busy_rejections: AtomicU64,
    /// Requests answered
    /// [`Status::Draining`](crate::protocol::Status::Draining) during
    /// shutdown.
    pub draining_rejections: AtomicU64,
    /// ENCODE requests served successfully.
    pub encode_ok: AtomicU64,
    /// DECODE requests served successfully.
    pub decode_ok: AtomicU64,
    /// PROBE requests served successfully.
    pub probe_ok: AtomicU64,
    /// METRICS requests served.
    pub metrics_ok: AtomicU64,
    /// Requests rejected as malformed.
    pub bad_requests: AtomicU64,
    /// Requests rejected as over the frame/image ceiling.
    pub too_large: AtomicU64,
    /// Requests the codec layer rejected (bad magic, truncation, …).
    pub codec_errors: AtomicU64,
    /// Connections dropped on transport errors (timeouts, resets,
    /// mid-frame EOF).
    pub io_errors: AtomicU64,
    /// Request body bytes read.
    pub bytes_in: AtomicU64,
    /// Reply body bytes written.
    pub bytes_out: AtomicU64,
    /// Pixels pushed through ENCODE.
    pub pixels_encoded: AtomicU64,
    /// Pixels pushed through DECODE.
    pub pixels_decoded: AtomicU64,
    /// Connections currently queued for a worker (gauge).
    pub queue_depth: AtomicU64,
    /// Encode bit-rate histogram: count per [`BPP_BUCKETS`] bucket, plus
    /// the trailing `+Inf` bucket.
    pub bpp_histogram: [AtomicU64; BPP_BUCKETS.len() + 1],
    /// Wall-clock latency of served ENCODE requests (codec work only, not
    /// transport).
    pub encode_latency: LatencyHistogram,
    /// Wall-clock latency of served DECODE requests.
    pub decode_latency: LatencyHistogram,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one encode observation to the bit-rate histogram.
    pub fn observe_bpp(&self, bpp: f64) {
        let idx = BPP_BUCKETS
            .iter()
            .position(|&edge| bpp <= edge)
            .unwrap_or(BPP_BUCKETS.len());
        self.bpp_histogram[idx].fetch_add(1, Relaxed);
    }

    /// Total requests that reached a worker (served or rejected there).
    pub fn requests_total(&self) -> u64 {
        self.encode_ok.load(Relaxed)
            + self.decode_ok.load(Relaxed)
            + self.probe_ok.load(Relaxed)
            + self.metrics_ok.load(Relaxed)
            + self.bad_requests.load(Relaxed)
            + self.too_large.load(Relaxed)
            + self.codec_errors.load(Relaxed)
    }

    /// Renders the registry as Prometheus-style text (the METRICS reply).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP cbic_{name} {help}\n# TYPE cbic_{name} counter\ncbic_{name} {v}\n"
            ));
        };
        counter(
            "connections_total",
            "Connections accepted",
            self.connections.load(Relaxed),
        );
        counter(
            "busy_rejections_total",
            "Requests refused with Busy (queue full)",
            self.busy_rejections.load(Relaxed),
        );
        counter(
            "draining_rejections_total",
            "Requests refused with Draining (shutdown)",
            self.draining_rejections.load(Relaxed),
        );
        counter(
            "encode_requests_total",
            "ENCODE requests served",
            self.encode_ok.load(Relaxed),
        );
        counter(
            "decode_requests_total",
            "DECODE requests served",
            self.decode_ok.load(Relaxed),
        );
        counter(
            "probe_requests_total",
            "PROBE requests served",
            self.probe_ok.load(Relaxed),
        );
        counter(
            "metrics_requests_total",
            "METRICS requests served",
            self.metrics_ok.load(Relaxed),
        );
        counter(
            "bad_requests_total",
            "Malformed requests rejected",
            self.bad_requests.load(Relaxed),
        );
        counter(
            "too_large_total",
            "Over-ceiling requests rejected",
            self.too_large.load(Relaxed),
        );
        counter(
            "codec_errors_total",
            "Requests the codec layer rejected",
            self.codec_errors.load(Relaxed),
        );
        counter(
            "io_errors_total",
            "Connections dropped on transport errors",
            self.io_errors.load(Relaxed),
        );
        counter(
            "bytes_in_total",
            "Request body bytes read",
            self.bytes_in.load(Relaxed),
        );
        counter(
            "bytes_out_total",
            "Reply body bytes written",
            self.bytes_out.load(Relaxed),
        );
        counter(
            "pixels_encoded_total",
            "Pixels compressed",
            self.pixels_encoded.load(Relaxed),
        );
        counter(
            "pixels_decoded_total",
            "Pixels decompressed",
            self.pixels_decoded.load(Relaxed),
        );
        out.push_str(
            "# HELP cbic_queue_depth Connections waiting for a worker\n\
             # TYPE cbic_queue_depth gauge\n",
        );
        out.push_str(&format!(
            "cbic_queue_depth {}\n",
            self.queue_depth.load(Relaxed)
        ));
        out.push_str(
            "# HELP cbic_encode_bpp Encoded bit rate distribution (bits/pixel)\n\
             # TYPE cbic_encode_bpp histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, bucket) in self.bpp_histogram.iter().enumerate() {
            cumulative += bucket.load(Relaxed);
            let le = BPP_BUCKETS
                .get(i)
                .map_or("+Inf".to_string(), f64::to_string);
            out.push_str(&format!(
                "cbic_encode_bpp_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!("cbic_encode_bpp_count {cumulative}\n"));
        self.encode_latency.render_into(
            &mut out,
            "cbic_encode_latency_us",
            "ENCODE service time distribution (microseconds)",
        );
        self.decode_latency.render_into(
            &mut out,
            "cbic_decode_latency_us",
            "DECODE service time distribution (microseconds)",
        );
        out
    }

    /// One-line operator summary for the periodic stderr report.
    pub fn summary_line(&self) -> String {
        format!(
            "cbic-serve: {} reqs ({} enc, {} dec, {} probe) | {} busy, {} bad, {} codec-err, {} io-err | {} B in, {} B out | queue {} | mean {:.0}/{:.0} us enc/dec",
            self.requests_total(),
            self.encode_ok.load(Relaxed),
            self.decode_ok.load(Relaxed),
            self.probe_ok.load(Relaxed),
            self.busy_rejections.load(Relaxed),
            self.bad_requests.load(Relaxed),
            self.codec_errors.load(Relaxed),
            self.io_errors.load(Relaxed),
            self.bytes_in.load(Relaxed),
            self.bytes_out.load(Relaxed),
            self.queue_depth.load(Relaxed),
            self.encode_latency.mean_us(),
            self.decode_latency.mean_us(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let m = Metrics::new();
        m.observe_bpp(0.5);
        m.observe_bpp(3.0);
        m.observe_bpp(100.0);
        let text = m.render();
        assert!(
            text.contains("cbic_encode_bpp_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cbic_encode_bpp_bucket{le=\"4\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cbic_encode_bpp_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("cbic_encode_bpp_count 3"), "{text}");
    }

    #[test]
    fn latency_histogram_renders_cumulative_buckets_and_sum() {
        let m = Metrics::new();
        m.encode_latency.observe_us(100);
        m.encode_latency.observe_us(900);
        m.encode_latency.observe_us(1_000_000);
        m.decode_latency.observe_us(300);
        let text = m.render();
        assert!(
            text.contains("cbic_encode_latency_us_bucket{le=\"250\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cbic_encode_latency_us_bucket{le=\"1000\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cbic_encode_latency_us_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("cbic_encode_latency_us_sum 1001000"),
            "{text}"
        );
        assert!(text.contains("cbic_encode_latency_us_count 3"), "{text}");
        assert!(text.contains("cbic_decode_latency_us_count 1"), "{text}");
        assert!((m.encode_latency.mean_us() - 1_001_000.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.decode_latency.mean_us(), 300.0);
        assert!(m.summary_line().contains("us enc/dec"));
    }

    #[test]
    fn totals_sum_served_and_rejected() {
        let m = Metrics::new();
        m.encode_ok.fetch_add(2, Relaxed);
        m.bad_requests.fetch_add(1, Relaxed);
        assert_eq!(m.requests_total(), 3);
        assert!(m.summary_line().contains("3 reqs"));
        assert!(m.render().contains("cbic_encode_requests_total 2"));
    }
}
