//! `cbic-serve`: the compression service daemon.
//!
//! ```text
//! cbic-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!            [--max-frame BYTES] [--timeout-ms MS] [--summary-secs S]
//! ```
//!
//! Binds the address (default `127.0.0.1:9123`), prints the bound
//! address to stderr (`listening on ...`), and serves until `SIGTERM` /
//! `SIGINT`, then drains in-flight requests and exits 0.

use std::process::ExitCode;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use cbic_server::server::{Server, ServerConfig};
use cbic_server::signal;

fn parse_args() -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:9123".to_string();
    let mut config = ServerConfig {
        summary_interval: Some(Duration::from_secs(10)),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--max-frame" => {
                config.max_frame_bytes = value("--max-frame")?
                    .parse()
                    .map_err(|e| format!("--max-frame: {e}"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                config.read_timeout = Duration::from_millis(ms);
                config.write_timeout = Duration::from_millis(ms);
            }
            "--summary-secs" => {
                let secs: u64 = value("--summary-secs")?
                    .parse()
                    .map_err(|e| format!("--summary-secs: {e}"))?;
                config.summary_interval = (secs > 0).then(|| Duration::from_secs(secs));
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((addr, config))
}

fn main() -> ExitCode {
    let (addr, config) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("cbic-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cbic-serve: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("cbic-serve: listening on {bound}"),
        Err(e) => {
            eprintln!("cbic-serve: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Mirror SIGTERM/SIGINT into the accept loop's shutdown flag.
    signal::install_shutdown_handler();
    let shutdown = server.shutdown_flag();
    std::thread::spawn(move || loop {
        if signal::shutdown_requested() {
            shutdown.store(true, Relaxed);
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });

    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cbic-serve: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
