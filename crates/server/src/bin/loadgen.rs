//! `cbic-loadgen`: a closed-loop load harness for `cbic-serve`.
//!
//! ```text
//! cbic-loadgen [--addr HOST:PORT] [--connections N] [--requests N]
//!              [--size PX] [--lanes L] [--codecs a,b,...]
//!              [--out PATH] [--check]
//! ```
//!
//! Opens `--connections` concurrent connections; each issues `--requests`
//! encode+decode round-trips cycling over the seven-image synthetic
//! corpus and the selected codecs, verifying every reconstruction
//! bit-exactly against the source. Busy replies are retried with backoff
//! (and counted). The run's latency distribution and per-codec bit rates
//! are written as JSON to `--out` (default `BENCH_server.json`); with
//! `--check` the process exits non-zero on any mismatch or error.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

use cbic_image::corpus::CorpusImage;
use cbic_image::Image;
use cbic_server::client::{Client, Reply};
use cbic_server::protocol::Status;
use cbic_universal::codecs::default_registry;

struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    size: usize,
    lanes: u8,
    codecs: Vec<String>,
    out: String,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9123".into(),
            connections: 4,
            requests: 32,
            size: 64,
            lanes: 1,
            codecs: vec![
                "proposed".into(),
                "jpegls".into(),
                "calic".into(),
                "slp".into(),
            ],
            out: "BENCH_server.json".into(),
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--check" {
            opts.check = true;
            continue;
        }
        let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => opts.addr = value,
            "--connections" => {
                opts.connections = value.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--requests" => {
                opts.requests = value.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--size" => opts.size = value.parse().map_err(|e| format!("--size: {e}"))?,
            "--lanes" => opts.lanes = value.parse().map_err(|e| format!("--lanes: {e}"))?,
            "--codecs" => {
                opts.codecs = value.split(',').map(str::to_string).collect();
            }
            "--out" => opts.out = value,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.connections == 0 || opts.requests == 0 {
        return Err("--connections and --requests must be positive".into());
    }
    Ok(opts)
}

#[derive(Default)]
struct Totals {
    requests: AtomicU64,
    mismatches: AtomicU64,
    busy_retries: AtomicU64,
    errors: AtomicU64,
    container_bytes: AtomicU64,
    pixels: AtomicU64,
}

struct Workload {
    /// `(codec name, container magic)` pairs to cycle over.
    codecs: Vec<(String, [u8; 4])>,
    /// The synthetic corpus at the requested size.
    images: Vec<Image>,
}

fn drive_connection(
    opts: &Options,
    work: &Workload,
    totals: &Totals,
    worker: usize,
    latencies_us: &mut Vec<u64>,
) -> Result<(), String> {
    let timeout = Duration::from_secs(10);
    let mut client = None;
    for i in 0..opts.requests {
        let pick = worker + i;
        let img = &work.images[pick % work.images.len()];
        let (name, magic) = &work.codecs[pick % work.codecs.len()];
        // (Re)connect lazily — a Busy refusal closes the connection.
        let mut attempt = 0u32;
        loop {
            let conn = match client.take() {
                Some(conn) => conn,
                None => Client::connect(&opts.addr, timeout)
                    .map_err(|e| format!("connect {}: {e}", opts.addr))?,
            };
            let mut conn = conn;
            let start = Instant::now();
            let encoded = conn
                .encode(img.view(), *magic, opts.lanes, 0)
                .map_err(|e| format!("encode rpc: {e}"))?;
            let container = match encoded {
                Reply::Encoded { container, .. } => container,
                Reply::Error {
                    status: Status::Busy | Status::Draining,
                    ..
                } => {
                    totals.busy_retries.fetch_add(1, Relaxed);
                    attempt += 1;
                    if attempt > 50 {
                        return Err("server busy for 50 consecutive attempts".into());
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
                    continue;
                }
                Reply::Error { status, message } => {
                    totals.errors.fetch_add(1, Relaxed);
                    return Err(format!("{name} encode refused: {status:?} {message}"));
                }
                other => return Err(format!("unexpected encode reply {other:?}")),
            };
            let decoded = conn
                .decode(&container)
                .map_err(|e| format!("decode rpc: {e}"))?;
            latencies_us.push(start.elapsed().as_micros() as u64);
            let Reply::Decoded(back) = decoded else {
                totals.errors.fetch_add(1, Relaxed);
                return Err(format!("{name} decode refused: {decoded:?}"));
            };
            totals.requests.fetch_add(1, Relaxed);
            totals
                .container_bytes
                .fetch_add(container.len() as u64, Relaxed);
            totals.pixels.fetch_add(img.pixel_count() as u64, Relaxed);
            if back != *img {
                totals.mismatches.fetch_add(1, Relaxed);
                eprintln!(
                    "cbic-loadgen: MISMATCH: {name} on {}x{}",
                    img.width(),
                    img.height()
                );
            }
            client = Some(conn);
            break;
        }
    }
    Ok(())
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// One latency histogram scraped off the server's METRICS page.
struct ScrapedHistogram {
    mean_us: f64,
    count: u64,
    /// Cumulative per-bucket counts in edge order, `+Inf` last.
    cumulative: Vec<u64>,
}

/// Pulls one Prometheus histogram out of the METRICS text: the mean (from
/// `_sum`/`_count`), the count, and the cumulative per-bucket counts in
/// edge order (`+Inf` last).
fn scrape_histogram(text: &str, name: &str) -> Option<ScrapedHistogram> {
    let bucket_prefix = format!("{name}_bucket{{le=\"");
    let mut buckets = Vec::new();
    for line in text.lines() {
        if line.starts_with(&bucket_prefix) {
            buckets.push(line.rsplit_once(' ')?.1.trim().parse().ok()?);
        }
    }
    let field = |suffix: &str| -> Option<u64> {
        let prefix = format!("{name}_{suffix} ");
        text.lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .and_then(|v| v.trim().parse().ok())
    };
    let (sum, count) = (field("sum")?, field("count")?);
    let mean_us = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };
    (!buckets.is_empty()).then_some(ScrapedHistogram {
        mean_us,
        count,
        cumulative: buckets,
    })
}

/// Fetches the server's own per-op latency histograms (measured inside
/// the worker, transport excluded) for embedding alongside the
/// client-side round-trip numbers.
fn fetch_server_latency(addr: &str) -> Option<(ScrapedHistogram, ScrapedHistogram)> {
    let mut client = Client::connect(addr, Duration::from_secs(10)).ok()?;
    let Reply::Metrics(text) = client.metrics().ok()? else {
        return None;
    };
    Some((
        scrape_histogram(&text, "cbic_encode_latency_us")?,
        scrape_histogram(&text, "cbic_decode_latency_us")?,
    ))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("cbic-loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let registry = default_registry();
    let mut codecs = Vec::new();
    for name in &opts.codecs {
        match registry
            .by_name(name)
            .and_then(|c| c.magic().map(|m| (name.clone(), m)))
        {
            Some(pair) => codecs.push(pair),
            None => {
                eprintln!("cbic-loadgen: unknown codec {name}");
                return ExitCode::FAILURE;
            }
        }
    }
    let work = Workload {
        codecs,
        images: CorpusImage::ALL
            .iter()
            .map(|c| c.generate(opts.size, opts.size))
            .collect(),
    };

    let totals = Totals::default();
    let started = Instant::now();
    let (all_latencies, failures) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..opts.connections {
            let (opts, work, totals) = (&opts, &work, &totals);
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(opts.requests);
                let result = drive_connection(opts, work, totals, worker, &mut latencies);
                (latencies, result)
            }));
        }
        let mut latencies = Vec::new();
        let mut failures = Vec::new();
        for handle in handles {
            let (mut lat, result) = handle.join().expect("loadgen worker panicked");
            latencies.append(&mut lat);
            if let Err(msg) = result {
                failures.push(msg);
            }
        }
        (latencies, failures)
    });
    let elapsed = started.elapsed().as_secs_f64();

    for msg in &failures {
        eprintln!("cbic-loadgen: connection failed: {msg}");
    }

    let mut sorted = all_latencies;
    sorted.sort_unstable();
    let requests = totals.requests.load(Relaxed);
    let mismatches = totals.mismatches.load(Relaxed);
    let errors = totals.errors.load(Relaxed) + failures.len() as u64;
    let busy = totals.busy_retries.load(Relaxed);
    let pixels = totals.pixels.load(Relaxed);
    let bytes = totals.container_bytes.load(Relaxed);
    let mean_us = if sorted.is_empty() {
        0
    } else {
        sorted.iter().sum::<u64>() / sorted.len() as u64
    };
    let rps = if elapsed > 0.0 {
        requests as f64 / elapsed
    } else {
        0.0
    };
    let bpp = if pixels > 0 {
        bytes as f64 * 8.0 / pixels as f64
    } else {
        0.0
    };

    eprintln!(
        "cbic-loadgen: {requests} round-trips over {} conns in {elapsed:.2}s \
         ({rps:.0} req/s, mean {mean_us} us, p50 {} us, p99 {} us) | \
         {mismatches} mismatches, {errors} errors, {busy} busy retries | mean {bpp:.3} bpp",
        opts.connections,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.99),
    );

    // The server's own view of the codec work, without the transport:
    // scraped from the METRICS page after the run. `null` if the scrape
    // fails (older server, connection refused) — the client-side numbers
    // above are always present.
    let server_latency = fetch_server_latency(&opts.addr);
    let edges: Vec<String> = cbic_server::metrics::LATENCY_BUCKETS_US
        .iter()
        .map(u64::to_string)
        .chain(std::iter::once("\"+Inf\"".to_string()))
        .collect();
    let join = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
    let server_latency_json = match &server_latency {
        Some((enc, dec)) => format!(
            "{{\n    \"buckets_le_us\": [{}],\n    \"encode\": {{ \"mean_us\": {:.1}, \"count\": {}, \"cumulative\": [{}] }},\n    \"decode\": {{ \"mean_us\": {:.1}, \"count\": {}, \"cumulative\": [{}] }}\n  }}",
            edges.join(", "),
            enc.mean_us,
            enc.count,
            join(&enc.cumulative),
            dec.mean_us,
            dec.count,
            join(&dec.cumulative),
        ),
        None => "null".to_string(),
    };
    if server_latency.is_none() {
        eprintln!("cbic-loadgen: server latency histograms unavailable (metrics scrape failed)");
    }

    // Hand-rolled JSON, matching the workspace's other BENCH_* reports.
    let codec_names: Vec<String> = work
        .codecs
        .iter()
        .map(|(name, _)| format!("\"{name}\""))
        .collect();
    let json = format!(
        "{{\n  \"schema\": 2,\n  \"harness\": \"cbic-loadgen\",\n  \"connections\": {},\n  \"requests_per_connection\": {},\n  \"image_size\": {},\n  \"lanes\": {},\n  \"codecs\": [{}],\n  \"elapsed_s\": {:.3},\n  \"requests\": {},\n  \"requests_per_s\": {:.1},\n  \"mismatches\": {},\n  \"errors\": {},\n  \"busy_retries\": {},\n  \"mean_bpp\": {:.3},\n  \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }},\n  \"server_latency_us\": {}\n}}\n",
        opts.connections,
        opts.requests,
        opts.size,
        opts.lanes,
        codec_names.join(", "),
        elapsed,
        requests,
        rps,
        mismatches,
        errors,
        busy,
        bpp,
        mean_us,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.90),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0),
        server_latency_json,
    );
    match std::fs::File::create(&opts.out).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("cbic-loadgen: wrote {}", opts.out),
        Err(e) => {
            eprintln!("cbic-loadgen: writing {}: {e}", opts.out);
            return ExitCode::FAILURE;
        }
    }

    if opts.check && (mismatches > 0 || errors > 0 || requests == 0) {
        eprintln!("cbic-loadgen: --check failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
