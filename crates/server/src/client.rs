//! A blocking client for the service protocol, used by `cbic-loadgen`
//! and the integration tests. One [`Client`] wraps one connection and
//! issues request/reply frames in order.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use cbic_image::{Image, ImageView};

use crate::protocol::{
    encode_decode_roi, parse_error_msg, read_frame, write_frame, EncodeRequest, Frame, Op, Status,
    PAYLOAD_BITS_UNTRACKED,
};

/// Largest reply body the client will accept (matches the server's
/// default frame ceiling).
const MAX_REPLY_BYTES: usize = 64 << 20;

/// What the service answered.
#[derive(Debug)]
pub enum Reply {
    /// ENCODE: the container plus exact payload bits when tracked.
    Encoded {
        /// The self-describing container bytes.
        container: Vec<u8>,
        /// Exact entropy-coded payload bits, when the codec tracks them.
        payload_bits: Option<u64>,
    },
    /// DECODE: the reconstructed image.
    Decoded(Image),
    /// PROBE: codec name and geometry without the pixels.
    Probed {
        /// Registered name of the codec that owns the container.
        codec: String,
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// Sample bit depth.
        bit_depth: u8,
    },
    /// METRICS: the Prometheus-style text page.
    Metrics(String),
    /// Any non-OK status, with the server's message.
    Error {
        /// The reply status byte.
        status: Status,
        /// Human-readable server-side description.
        message: String,
    },
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and applies the given socket timeout to reads and writes.
    ///
    /// # Errors
    ///
    /// Socket-level connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Requests are single small frames; leaving Nagle on costs a
        // delayed-ACK round trip per request.
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends a raw frame body and reads the reply frame.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or an oversized reply.
    pub fn roundtrip(&mut self, body: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, body)?;
        match read_frame(&mut self.stream, MAX_REPLY_BYTES)? {
            Frame::Body(reply) => Ok(reply),
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection before replying",
            )),
            Frame::TooLarge(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply frame of {len} bytes exceeds the client ceiling"),
            )),
        }
    }

    /// Compresses `img` remotely with the codec owning `magic`.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply; server-side rejections
    /// come back as [`Reply::Error`].
    pub fn encode(
        &mut self,
        img: ImageView<'_>,
        magic: [u8; 4],
        lanes: u8,
        threads: u8,
    ) -> io::Result<Reply> {
        self.encode_tiled(img, magic, lanes, threads, None)
    }

    /// [`encode`](Self::encode) with an optional v4 tile-grid geometry
    /// (proposed codec only; `None` keeps the flat container).
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode).
    pub fn encode_tiled(
        &mut self,
        img: ImageView<'_>,
        magic: [u8; 4],
        lanes: u8,
        threads: u8,
        tile: Option<(u16, u16)>,
    ) -> io::Result<Reply> {
        self.encode_with_model(img, magic, lanes, threads, tile, 0)
    }

    /// [`encode_tiled`](Self::encode_tiled) with an explicit context-model
    /// byte: `0` keeps the classic compound context, any other value asks
    /// for the wide-hash model with that `banks_log2` (the server rejects
    /// values outside `4..=16`, and codecs without wide support).
    ///
    /// # Errors
    ///
    /// As [`encode`](Self::encode).
    pub fn encode_with_model(
        &mut self,
        img: ImageView<'_>,
        magic: [u8; 4],
        lanes: u8,
        threads: u8,
        tile: Option<(u16, u16)>,
        model: u8,
    ) -> io::Result<Reply> {
        let req = EncodeRequest {
            magic,
            lanes,
            threads,
            bit_depth: img.bit_depth(),
            width: img.width() as u32,
            height: img.height() as u32,
            tile,
            model,
            samples: img.rows().flat_map(<[u16]>::to_vec).collect(),
        };
        let reply = self.roundtrip(&req.to_body())?;
        let rest = check_status(&reply)?;
        let Some(rest) = rest else {
            return parse_error(&reply);
        };
        if rest.len() < 8 {
            return Err(malformed("encode reply shorter than its bit count"));
        }
        let bits = u64::from_le_bytes(rest[..8].try_into().expect("sized"));
        Ok(Reply::Encoded {
            container: rest[8..].to_vec(),
            payload_bits: (bits != PAYLOAD_BITS_UNTRACKED).then_some(bits),
        })
    }

    /// Decompresses a container remotely.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn decode(&mut self, container: &[u8]) -> io::Result<Reply> {
        let mut body = Vec::with_capacity(1 + container.len());
        body.push(Op::Decode as u8);
        body.extend_from_slice(container);
        self.decode_body(body)
    }

    /// Region-of-interest decode: the reply holds only the `w`×`h` crop
    /// at `(x, y)`. Over a v4 tile-grid container the server decodes only
    /// the covering tiles.
    ///
    /// # Errors
    ///
    /// As [`decode`](Self::decode); an out-of-bounds rect comes back as
    /// [`Reply::Error`].
    pub fn decode_roi(
        &mut self,
        container: &[u8],
        x: u32,
        y: u32,
        w: u32,
        h: u32,
    ) -> io::Result<Reply> {
        let mut body = Vec::with_capacity(18 + container.len());
        body.push(Op::Decode as u8);
        body.extend_from_slice(&encode_decode_roi(x, y, w, h));
        body.extend_from_slice(container);
        self.decode_body(body)
    }

    fn decode_body(&mut self, body: Vec<u8>) -> io::Result<Reply> {
        let reply = self.roundtrip(&body)?;
        let Some(rest) = check_status(&reply)? else {
            return parse_error(&reply);
        };
        if rest.len() < 9 {
            return Err(malformed("decode reply shorter than its geometry"));
        }
        let width = u32::from_le_bytes(rest[..4].try_into().expect("sized")) as usize;
        let height = u32::from_le_bytes(rest[4..8].try_into().expect("sized")) as usize;
        let bit_depth = rest[8];
        let data = &rest[9..];
        let samples: Vec<u16> = if bit_depth > 8 {
            data.chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect()
        } else {
            data.iter().map(|&b| u16::from(b)).collect()
        };
        let img = Image::from_samples(width, height, bit_depth, samples)
            .map_err(|e| malformed(&format!("decode reply: {e}")))?;
        Ok(Reply::Decoded(img))
    }

    /// Asks the service to identify a container without returning pixels.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn probe(&mut self, container: &[u8]) -> io::Result<Reply> {
        let mut body = Vec::with_capacity(1 + container.len());
        body.push(Op::Probe as u8);
        body.extend_from_slice(container);
        let reply = self.roundtrip(&body)?;
        let Some(rest) = check_status(&reply)? else {
            return parse_error(&reply);
        };
        if rest.is_empty() {
            return Err(malformed("probe reply missing codec name"));
        }
        let name_len = rest[0] as usize;
        if rest.len() < 1 + name_len + 9 {
            return Err(malformed("probe reply shorter than its geometry"));
        }
        let codec = String::from_utf8_lossy(&rest[1..1 + name_len]).into_owned();
        let geo = &rest[1 + name_len..];
        Ok(Reply::Probed {
            codec,
            width: u32::from_le_bytes(geo[..4].try_into().expect("sized")),
            height: u32::from_le_bytes(geo[4..8].try_into().expect("sized")),
            bit_depth: geo[8],
        })
    }

    /// Fetches the metrics text page.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed reply.
    pub fn metrics(&mut self) -> io::Result<Reply> {
        let reply = self.roundtrip(&[Op::Metrics as u8])?;
        let Some(rest) = check_status(&reply)? else {
            return parse_error(&reply);
        };
        Ok(Reply::Metrics(String::from_utf8_lossy(rest).into_owned()))
    }

    /// Sends raw bytes without framing — for tests that exercise the
    /// server's handling of malformed transports.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one reply frame without sending anything first.
    ///
    /// # Errors
    ///
    /// Transport failures or an oversized reply.
    pub fn read_reply(&mut self) -> io::Result<Vec<u8>> {
        match read_frame(&mut self.stream, MAX_REPLY_BYTES)? {
            Frame::Body(reply) => Ok(reply),
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
            Frame::TooLarge(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply frame of {len} bytes exceeds the client ceiling"),
            )),
        }
    }

    /// Half-closes the write side so the server sees a clean EOF.
    ///
    /// # Errors
    ///
    /// Socket shutdown failures.
    pub fn finish(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads until the server closes the connection, discarding bytes.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 4096];
        while matches!(self.stream.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// `Ok(Some(rest))` for an OK reply, `Ok(None)` for a recognized non-OK
/// status (parse with [`parse_error`]), `Err` for garbage.
fn check_status(reply: &[u8]) -> io::Result<Option<&[u8]>> {
    let Some(&status_byte) = reply.first() else {
        return Err(malformed("empty reply body"));
    };
    match Status::from_byte(status_byte) {
        Some(Status::Ok) => Ok(Some(&reply[1..])),
        Some(_) => Ok(None),
        None => Err(malformed(&format!("unknown status byte {status_byte}"))),
    }
}

fn parse_error(reply: &[u8]) -> io::Result<Reply> {
    let status = Status::from_byte(reply[0]).expect("checked by check_status");
    Ok(Reply::Error {
        status,
        message: parse_error_msg(&reply[1..]),
    })
}

fn malformed(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}
