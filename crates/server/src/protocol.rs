//! The wire protocol: length-framed binary requests and replies.
//!
//! Every message is one *frame*: a `u32` little-endian body length
//! followed by that many body bytes. Frames never exceed the server's
//! configured ceiling; a request frame whose declared length is larger is
//! answered with [`Status::TooLarge`] and the connection is closed without
//! reading the body.
//!
//! Request bodies start with an [`Op`] byte:
//!
//! ```text
//! ENCODE  = [1][magic 4B][lanes u8][threads u8][depth u8][width u32][height u32][samples]
//! DECODE  = [2][container bytes]
//! PROBE   = [3][container bytes]
//! METRICS = [4]
//! ```
//!
//! `samples` are row-major, one byte per sample for depths ≤ 8 and two
//! little-endian bytes otherwise. `magic` routes the request to a codec by
//! its container magic (`CBIC`, `CBTI`, …); `lanes`/`threads` map onto
//! [`EncodeOptions`](cbic_image::EncodeOptions) lanes and parallelism.
//!
//! Reply bodies start with a [`Status`] byte:
//!
//! ```text
//! OK(ENCODE)  = [0][payload_bits u64][container]       payload_bits = u64::MAX when untracked
//! OK(DECODE)  = [0][width u32][height u32][depth u8][samples]
//! OK(PROBE)   = [0][name_len u8][name][width u32][height u32][depth u8]
//! OK(METRICS) = [0][utf-8 text]
//! error       = [status][msg_len u16][msg utf-8]
//! ```

use std::io::{self, Read, Write};

/// Sentinel `payload_bits` value in an ENCODE reply: the codec does not
/// track exact payload bits for this container.
pub const PAYLOAD_BITS_UNTRACKED: u64 = u64::MAX;

/// Request operations (first body byte of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Compress raw samples into a container.
    Encode = 1,
    /// Decompress a container into raw samples.
    Decode = 2,
    /// Decode a container but return only its geometry and codec name.
    Probe = 3,
    /// Fetch the metrics registry as Prometheus-style text.
    Metrics = 4,
}

impl Op {
    /// Parses an op byte; `None` for unknown operations.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Op::Encode),
            2 => Some(Op::Decode),
            3 => Some(Op::Probe),
            4 => Some(Op::Metrics),
            _ => None,
        }
    }
}

/// Reply status (first body byte of a reply frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served; payload follows per op.
    Ok = 0,
    /// Work queue full — retry later. The connection is closed.
    Busy = 1,
    /// Malformed frame body (bad op, short fields, invalid samples).
    BadRequest = 2,
    /// Frame or image larger than the server's configured ceiling.
    TooLarge = 3,
    /// The codec rejected the payload (bad magic, truncation, …).
    CodecError = 4,
    /// Server is draining for shutdown; no further requests are served.
    Draining = 5,
}

impl Status {
    /// Parses a status byte; `None` for unknown statuses.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::BadRequest),
            3 => Some(Status::TooLarge),
            4 => Some(Status::CodecError),
            5 => Some(Status::Draining),
            _ => None,
        }
    }
}

/// Writes one frame: `u32` LE length then the body.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub fn write_frame(sink: &mut dyn Write, body: &[u8]) -> io::Result<()> {
    sink.write_all(&(body.len() as u32).to_le_bytes())?;
    sink.write_all(body)?;
    sink.flush()
}

/// What [`read_frame`] found at the head of the stream.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame body.
    Body(Vec<u8>),
    /// The peer closed the stream cleanly before a length prefix.
    Eof,
    /// The length prefix exceeds `max_len`; the body was *not* read.
    TooLarge(u32),
}

/// Reads one frame, enforcing the body-length ceiling *before* any
/// allocation proportional to the declared length.
///
/// # Errors
///
/// Propagates the source's I/O errors; EOF mid-frame (after the length
/// prefix) surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(source: &mut dyn Read, max_len: usize) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte means the peer is done.
    match source.read(&mut len_buf) {
        Ok(0) => return Ok(Frame::Eof),
        Ok(n) => source.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_len {
        return Ok(Frame::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    source.read_exact(&mut body)?;
    Ok(Frame::Body(body))
}

/// A parsed ENCODE request body (everything after the op byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeRequest {
    /// Container magic selecting the codec.
    pub magic: [u8; 4],
    /// Coder lanes (`1` = classic single-coder stream).
    pub lanes: u8,
    /// Worker threads for codecs with a parallel path (`0`/`1` =
    /// sequential).
    pub threads: u8,
    /// Sample bit depth, `1..=16`.
    pub bit_depth: u8,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Row-major samples, already widened to `u16`.
    pub samples: Vec<u16>,
}

impl EncodeRequest {
    /// Serializes the full request body (op byte included).
    pub fn to_body(&self) -> Vec<u8> {
        let wide = self.bit_depth > 8;
        let mut body = Vec::with_capacity(16 + self.samples.len() * if wide { 2 } else { 1 });
        body.push(Op::Encode as u8);
        body.extend_from_slice(&self.magic);
        body.push(self.lanes);
        body.push(self.threads);
        body.push(self.bit_depth);
        body.extend_from_slice(&self.width.to_le_bytes());
        body.extend_from_slice(&self.height.to_le_bytes());
        if wide {
            for &s in &self.samples {
                body.extend_from_slice(&s.to_le_bytes());
            }
        } else {
            body.extend(self.samples.iter().map(|&s| s as u8));
        }
        body
    }

    /// Parses the fields after the op byte.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(rest: &[u8]) -> Result<Self, String> {
        if rest.len() < 15 {
            return Err(format!("encode header needs 15 bytes, got {}", rest.len()));
        }
        let magic = [rest[0], rest[1], rest[2], rest[3]];
        let (lanes, threads, bit_depth) = (rest[4], rest[5], rest[6]);
        let width = u32::from_le_bytes(rest[7..11].try_into().expect("sized"));
        let height = u32::from_le_bytes(rest[11..15].try_into().expect("sized"));
        let pixels = (width as u64) * (height as u64);
        let data = &rest[15..];
        let wide = bit_depth > 8;
        let expect = pixels * if wide { 2 } else { 1 };
        if data.len() as u64 != expect {
            return Err(format!(
                "{width}x{height} at {bit_depth}-bit needs {expect} sample bytes, got {}",
                data.len()
            ));
        }
        let samples = if wide {
            data.chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect()
        } else {
            data.iter().map(|&b| u16::from(b)).collect()
        };
        Ok(Self {
            magic,
            lanes,
            threads,
            bit_depth,
            width,
            height,
            samples,
        })
    }
}

/// Serializes an error reply body: `[status][msg_len u16][msg]`.
pub fn error_body(status: Status, msg: &str) -> Vec<u8> {
    let msg = msg.as_bytes();
    let len = msg.len().min(u16::MAX as usize);
    let mut body = Vec::with_capacity(3 + len);
    body.push(status as u8);
    body.extend_from_slice(&(len as u16).to_le_bytes());
    body.extend_from_slice(&msg[..len]);
    body
}

/// Parses an error reply body's message (the bytes after the status).
pub fn parse_error_msg(rest: &[u8]) -> String {
    if rest.len() < 2 {
        return String::new();
    }
    let len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
    String::from_utf8_lossy(&rest[2..rest.len().min(2 + len)]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        assert_eq!(&wire[..4], &5u32.to_le_bytes());
        match read_frame(&mut &wire[..], 64).unwrap() {
            Frame::Body(b) => assert_eq!(b, b"hello"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_reports_clean_eof_and_oversize_without_reading_body() {
        assert!(matches!(read_frame(&mut &[][..], 64).unwrap(), Frame::Eof));
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        match read_frame(&mut &wire[..], 64).unwrap() {
            Frame::TooLarge(len) => assert_eq!(len, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_errors_on_mid_frame_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[7u8; 32]).unwrap();
        let err = read_frame(&mut &wire[..10], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the length prefix itself.
        let err = read_frame(&mut &wire[..2], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn encode_request_roundtrips_both_sample_widths() {
        for (depth, samples) in [(8u8, vec![0u16, 255, 7]), (12, vec![0, 4095, 300])] {
            let req = EncodeRequest {
                magic: *b"CBIC",
                lanes: 4,
                threads: 2,
                bit_depth: depth,
                width: 3,
                height: 1,
                samples,
            };
            let body = req.to_body();
            assert_eq!(body[0], Op::Encode as u8);
            assert_eq!(EncodeRequest::parse(&body[1..]).unwrap(), req);
        }
    }

    #[test]
    fn encode_request_rejects_sample_count_mismatch() {
        let req = EncodeRequest {
            magic: *b"CBIC",
            lanes: 1,
            threads: 0,
            bit_depth: 8,
            width: 4,
            height: 4,
            samples: vec![0; 16],
        };
        let mut body = req.to_body();
        body.pop();
        assert!(EncodeRequest::parse(&body[1..]).is_err());
        assert!(EncodeRequest::parse(&[0u8; 3]).is_err());
    }

    #[test]
    fn error_body_roundtrips_and_truncates() {
        let body = error_body(Status::BadRequest, "nope");
        assert_eq!(body[0], Status::BadRequest as u8);
        assert_eq!(parse_error_msg(&body[1..]), "nope");
        assert_eq!(parse_error_msg(&[]), "");
    }

    #[test]
    fn op_and_status_bytes_roundtrip() {
        for op in [Op::Encode, Op::Decode, Op::Probe, Op::Metrics] {
            assert_eq!(Op::from_byte(op as u8), Some(op));
        }
        assert_eq!(Op::from_byte(0), None);
        for st in [
            Status::Ok,
            Status::Busy,
            Status::BadRequest,
            Status::TooLarge,
            Status::CodecError,
            Status::Draining,
        ] {
            assert_eq!(Status::from_byte(st as u8), Some(st));
        }
        assert_eq!(Status::from_byte(99), None);
    }
}
