//! The wire protocol: length-framed binary requests and replies.
//!
//! Every message is one *frame*: a `u32` little-endian body length
//! followed by that many body bytes. Frames never exceed the server's
//! configured ceiling; a request frame whose declared length is larger is
//! answered with [`Status::TooLarge`] and the connection is closed without
//! reading the body.
//!
//! Request bodies start with an [`Op`] byte:
//!
//! ```text
//! ENCODE  = [1][magic 4B][lanes u8][threads u8][depth u8][width u32][height u32]
//!              [tile_w u16][tile_h u16][model u8][samples]
//! DECODE  = [2][roi?][container bytes]    roi = [0x01][x u32][y u32][w u32][h u32]
//! PROBE   = [3][container bytes]
//! METRICS = [4]
//! ```
//!
//! `samples` are row-major, one byte per sample for depths ≤ 8 and two
//! little-endian bytes otherwise. `magic` routes the request to a codec by
//! its container magic (`CBIC`, `CBTI`, …); `lanes`/`threads` map onto
//! [`EncodeOptions`](cbic_image::EncodeOptions) lanes and parallelism.
//! `tile_w`/`tile_h` of `0, 0` keep the flat container; nonzero values
//! request the proposed codec's v4 seekable tile grid. `model` selects
//! the context model: `0` is the classic compound context, any other
//! value is the wide-hash model's `banks_log2` (the codec validates the
//! `4..=16` range and answers out-of-range values with a codec error).
//!
//! A DECODE body may carry an optional region-of-interest prefix: a
//! `0x01` sentinel byte then four `u32` LE fields (x, y, w, h in pixels).
//! The sentinel can never collide with a container, because every
//! registered magic starts with an ASCII letter (`C` = `0x43`). With an
//! ROI the reply holds only the crop's samples — over a v4 grid the
//! server decodes just the covering tiles.
//!
//! Reply bodies start with a [`Status`] byte:
//!
//! ```text
//! OK(ENCODE)  = [0][payload_bits u64][container]       payload_bits = u64::MAX when untracked
//! OK(DECODE)  = [0][width u32][height u32][depth u8][samples]
//! OK(PROBE)   = [0][name_len u8][name][width u32][height u32][depth u8]
//! OK(METRICS) = [0][utf-8 text]
//! error       = [status][msg_len u16][msg utf-8]
//! ```

use std::io::{self, Read, Write};

/// Sentinel `payload_bits` value in an ENCODE reply: the codec does not
/// track exact payload bits for this container.
pub const PAYLOAD_BITS_UNTRACKED: u64 = u64::MAX;

/// Request operations (first body byte of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Compress raw samples into a container.
    Encode = 1,
    /// Decompress a container into raw samples.
    Decode = 2,
    /// Decode a container but return only its geometry and codec name.
    Probe = 3,
    /// Fetch the metrics registry as Prometheus-style text.
    Metrics = 4,
}

impl Op {
    /// Parses an op byte; `None` for unknown operations.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Op::Encode),
            2 => Some(Op::Decode),
            3 => Some(Op::Probe),
            4 => Some(Op::Metrics),
            _ => None,
        }
    }
}

/// Reply status (first body byte of a reply frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request served; payload follows per op.
    Ok = 0,
    /// Work queue full — retry later. The connection is closed.
    Busy = 1,
    /// Malformed frame body (bad op, short fields, invalid samples).
    BadRequest = 2,
    /// Frame or image larger than the server's configured ceiling.
    TooLarge = 3,
    /// The codec rejected the payload (bad magic, truncation, …).
    CodecError = 4,
    /// Server is draining for shutdown; no further requests are served.
    Draining = 5,
}

impl Status {
    /// Parses a status byte; `None` for unknown statuses.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::BadRequest),
            3 => Some(Status::TooLarge),
            4 => Some(Status::CodecError),
            5 => Some(Status::Draining),
            _ => None,
        }
    }
}

/// Writes one frame: `u32` LE length then the body.
///
/// # Errors
///
/// Propagates the sink's I/O errors.
pub fn write_frame(sink: &mut dyn Write, body: &[u8]) -> io::Result<()> {
    sink.write_all(&(body.len() as u32).to_le_bytes())?;
    sink.write_all(body)?;
    sink.flush()
}

/// What [`read_frame`] found at the head of the stream.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame body.
    Body(Vec<u8>),
    /// The peer closed the stream cleanly before a length prefix.
    Eof,
    /// The length prefix exceeds `max_len`; the body was *not* read.
    TooLarge(u32),
}

/// Reads one frame, enforcing the body-length ceiling *before* any
/// allocation proportional to the declared length.
///
/// # Errors
///
/// Propagates the source's I/O errors; EOF mid-frame (after the length
/// prefix) surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(source: &mut dyn Read, max_len: usize) -> io::Result<Frame> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte means the peer is done.
    match source.read(&mut len_buf) {
        Ok(0) => return Ok(Frame::Eof),
        Ok(n) => source.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > max_len {
        return Ok(Frame::TooLarge(len));
    }
    let mut body = vec![0u8; len as usize];
    source.read_exact(&mut body)?;
    Ok(Frame::Body(body))
}

/// A parsed ENCODE request body (everything after the op byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeRequest {
    /// Container magic selecting the codec.
    pub magic: [u8; 4],
    /// Coder lanes (`1` = classic single-coder stream).
    pub lanes: u8,
    /// Worker threads for codecs with a parallel path (`0`/`1` =
    /// sequential).
    pub threads: u8,
    /// Sample bit depth, `1..=16`.
    pub bit_depth: u8,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// 2D tile size for the proposed codec's v4 seekable grid; `None`
    /// keeps the flat container. Carried as two `u16`s on the wire
    /// (`0, 0` = untiled).
    pub tile: Option<(u16, u16)>,
    /// Context model byte: `0` = classic compound context, any other
    /// value = the wide-hash model's `banks_log2` (validated by the
    /// codec, which accepts `4..=16`).
    pub model: u8,
    /// Row-major samples, already widened to `u16`.
    pub samples: Vec<u16>,
}

impl EncodeRequest {
    /// Serializes the full request body (op byte included).
    pub fn to_body(&self) -> Vec<u8> {
        let wide = self.bit_depth > 8;
        let mut body = Vec::with_capacity(21 + self.samples.len() * if wide { 2 } else { 1 });
        body.push(Op::Encode as u8);
        body.extend_from_slice(&self.magic);
        body.push(self.lanes);
        body.push(self.threads);
        body.push(self.bit_depth);
        body.extend_from_slice(&self.width.to_le_bytes());
        body.extend_from_slice(&self.height.to_le_bytes());
        let (tw, th) = self.tile.unwrap_or((0, 0));
        body.extend_from_slice(&tw.to_le_bytes());
        body.extend_from_slice(&th.to_le_bytes());
        body.push(self.model);
        if wide {
            for &s in &self.samples {
                body.extend_from_slice(&s.to_le_bytes());
            }
        } else {
            body.extend(self.samples.iter().map(|&s| s as u8));
        }
        body
    }

    /// Parses the fields after the op byte.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(rest: &[u8]) -> Result<Self, String> {
        if rest.len() < 20 {
            return Err(format!("encode header needs 20 bytes, got {}", rest.len()));
        }
        let magic = [rest[0], rest[1], rest[2], rest[3]];
        let (lanes, threads, bit_depth) = (rest[4], rest[5], rest[6]);
        let width = u32::from_le_bytes(rest[7..11].try_into().expect("sized"));
        let height = u32::from_le_bytes(rest[11..15].try_into().expect("sized"));
        let tile_w = u16::from_le_bytes([rest[15], rest[16]]);
        let tile_h = u16::from_le_bytes([rest[17], rest[18]]);
        let tile = match (tile_w, tile_h) {
            (0, 0) => None,
            (0, _) | (_, 0) => {
                return Err(format!(
                    "tile geometry {tile_w}x{tile_h}: both dimensions must be nonzero (or both 0 for untiled)"
                ))
            }
            _ => Some((tile_w, tile_h)),
        };
        let model = rest[19];
        let pixels = (width as u64) * (height as u64);
        let data = &rest[20..];
        let wide = bit_depth > 8;
        let expect = pixels * if wide { 2 } else { 1 };
        if data.len() as u64 != expect {
            return Err(format!(
                "{width}x{height} at {bit_depth}-bit needs {expect} sample bytes, got {}",
                data.len()
            ));
        }
        let samples = if wide {
            data.chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect()
        } else {
            data.iter().map(|&b| u16::from(b)).collect()
        };
        Ok(Self {
            magic,
            lanes,
            threads,
            bit_depth,
            width,
            height,
            tile,
            model,
            samples,
        })
    }
}

/// The `0x01` sentinel introducing an optional DECODE region-of-interest
/// prefix. Container bytes can never start with it: every registered
/// magic begins with an ASCII letter.
pub const DECODE_ROI_SENTINEL: u8 = 0x01;

/// A parsed DECODE body: the optional ROI rect `(x, y, w, h)` and the
/// container bytes that follow it.
pub type DecodeRoiSplit<'a> = (Option<(u32, u32, u32, u32)>, &'a [u8]);

/// Splits a DECODE body (the bytes after the op byte) into its optional
/// ROI rect and the container bytes.
///
/// # Errors
///
/// A human-readable message when the sentinel is present but the 16-byte
/// rect is cut short.
pub fn split_decode_roi(rest: &[u8]) -> Result<DecodeRoiSplit<'_>, String> {
    match rest.first() {
        Some(&DECODE_ROI_SENTINEL) => {
            if rest.len() < 17 {
                return Err(format!(
                    "decode ROI prefix needs 17 bytes (sentinel + 4 u32 fields), got {}",
                    rest.len()
                ));
            }
            let f = |i: usize| u32::from_le_bytes(rest[i..i + 4].try_into().expect("sized"));
            Ok((Some((f(1), f(5), f(9), f(13))), &rest[17..]))
        }
        _ => Ok((None, rest)),
    }
}

/// Serializes a DECODE ROI prefix (sentinel + x, y, w, h as `u32` LE).
pub fn encode_decode_roi(x: u32, y: u32, w: u32, h: u32) -> [u8; 17] {
    let mut out = [0u8; 17];
    out[0] = DECODE_ROI_SENTINEL;
    out[1..5].copy_from_slice(&x.to_le_bytes());
    out[5..9].copy_from_slice(&y.to_le_bytes());
    out[9..13].copy_from_slice(&w.to_le_bytes());
    out[13..17].copy_from_slice(&h.to_le_bytes());
    out
}

/// Serializes an error reply body: `[status][msg_len u16][msg]`.
pub fn error_body(status: Status, msg: &str) -> Vec<u8> {
    let msg = msg.as_bytes();
    let len = msg.len().min(u16::MAX as usize);
    let mut body = Vec::with_capacity(3 + len);
    body.push(status as u8);
    body.extend_from_slice(&(len as u16).to_le_bytes());
    body.extend_from_slice(&msg[..len]);
    body
}

/// Parses an error reply body's message (the bytes after the status).
pub fn parse_error_msg(rest: &[u8]) -> String {
    if rest.len() < 2 {
        return String::new();
    }
    let len = u16::from_le_bytes([rest[0], rest[1]]) as usize;
    String::from_utf8_lossy(&rest[2..rest.len().min(2 + len)]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        assert_eq!(&wire[..4], &5u32.to_le_bytes());
        match read_frame(&mut &wire[..], 64).unwrap() {
            Frame::Body(b) => assert_eq!(b, b"hello"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_reports_clean_eof_and_oversize_without_reading_body() {
        assert!(matches!(read_frame(&mut &[][..], 64).unwrap(), Frame::Eof));
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        match read_frame(&mut &wire[..], 64).unwrap() {
            Frame::TooLarge(len) => assert_eq!(len, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_errors_on_mid_frame_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[7u8; 32]).unwrap();
        let err = read_frame(&mut &wire[..10], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the length prefix itself.
        let err = read_frame(&mut &wire[..2], 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn encode_request_roundtrips_both_sample_widths() {
        for (depth, samples) in [(8u8, vec![0u16, 255, 7]), (12, vec![0, 4095, 300])] {
            for tile in [None, Some((256u16, 128u16))] {
                for model in [0u8, 11] {
                    let req = EncodeRequest {
                        magic: *b"CBIC",
                        lanes: 4,
                        threads: 2,
                        bit_depth: depth,
                        width: 3,
                        height: 1,
                        tile,
                        model,
                        samples: samples.clone(),
                    };
                    let body = req.to_body();
                    assert_eq!(body[0], Op::Encode as u8);
                    assert_eq!(body[20], model, "model byte after the tile words");
                    assert_eq!(EncodeRequest::parse(&body[1..]).unwrap(), req);
                }
            }
        }
    }

    #[test]
    fn encode_request_rejects_sample_count_mismatch() {
        let req = EncodeRequest {
            magic: *b"CBIC",
            lanes: 1,
            threads: 0,
            bit_depth: 8,
            width: 4,
            height: 4,
            tile: None,
            model: 0,
            samples: vec![0; 16],
        };
        let mut body = req.to_body();
        body.pop();
        assert!(EncodeRequest::parse(&body[1..]).is_err());
        assert!(EncodeRequest::parse(&[0u8; 3]).is_err());
    }

    #[test]
    fn encode_request_rejects_half_zero_tile() {
        let req = EncodeRequest {
            magic: *b"CBIC",
            lanes: 1,
            threads: 0,
            bit_depth: 8,
            width: 2,
            height: 2,
            tile: Some((16, 16)),
            model: 0,
            samples: vec![0; 4],
        };
        let mut body = req.to_body();
        body[18] = 0; // tile_w low byte -> 0x0000 while tile_h stays nonzero
        body[19] = 0;
        assert!(EncodeRequest::parse(&body[1..]).is_err());
    }

    #[test]
    fn decode_roi_prefix_roundtrips_and_absent_means_whole_image() {
        let prefix = encode_decode_roi(7, 9, 100, 50);
        let mut body = prefix.to_vec();
        body.extend_from_slice(b"CBICrest");
        let (roi, container) = split_decode_roi(&body).unwrap();
        assert_eq!(roi, Some((7, 9, 100, 50)));
        assert_eq!(container, b"CBICrest");
        // No sentinel: the whole body is the container.
        let (roi, container) = split_decode_roi(b"CBICrest").unwrap();
        assert_eq!(roi, None);
        assert_eq!(container, b"CBICrest");
        // Sentinel with a short rect is an error, not a panic.
        assert!(split_decode_roi(&[DECODE_ROI_SENTINEL, 1, 2]).is_err());
        // Empty body passes through (the codec will reject it).
        assert_eq!(split_decode_roi(&[]).unwrap(), (None, &[][..]));
    }

    #[test]
    fn error_body_roundtrips_and_truncates() {
        let body = error_body(Status::BadRequest, "nope");
        assert_eq!(body[0], Status::BadRequest as u8);
        assert_eq!(parse_error_msg(&body[1..]), "nope");
        assert_eq!(parse_error_msg(&[]), "");
    }

    #[test]
    fn op_and_status_bytes_roundtrip() {
        for op in [Op::Encode, Op::Decode, Op::Probe, Op::Metrics] {
            assert_eq!(Op::from_byte(op as u8), Some(op));
        }
        assert_eq!(Op::from_byte(0), None);
        for st in [
            Status::Ok,
            Status::Busy,
            Status::BadRequest,
            Status::TooLarge,
            Status::CodecError,
            Status::Draining,
        ] {
            assert_eq!(Status::from_byte(st as u8), Some(st));
        }
        assert_eq!(Status::from_byte(99), None);
    }
}
