//! Compression-as-a-service over the workspace codec registry: a TCP
//! front end that keeps the paper codec's model state resident between
//! requests.
//!
//! The service speaks a length-framed binary [`protocol`]: ENCODE routes
//! raw samples to a codec by container magic, DECODE/PROBE route
//! containers by auto-detection, METRICS returns the counter registry as
//! text. Requests are served by a sharded pool of worker threads, each
//! owning one reusable `EncoderSession`/`DecoderSession` pair — the
//! per-request cost is a model *reset*, not a model *allocation*
//! (see [`server`]).
//!
//! Overload is explicit: a bounded queue in front of the pool answers
//! `Busy` the moment it is full, oversized frames are refused before
//! their body is read, idle sockets time out, and `SIGTERM` drains
//! in-flight work before the process exits ([`signal`]).
//!
//! Two binaries ship with the crate: `cbic-serve` (the daemon) and
//! `cbic-loadgen` (a closed-loop load harness that checks bit-exact
//! round-trips and writes `BENCH_server.json`).
//!
//! # Examples
//!
//! ```
//! use cbic_image::corpus::CorpusImage;
//! use cbic_server::client::{Client, Reply};
//! use cbic_server::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let handle = server.spawn()?;
//!
//! let img = CorpusImage::Lena.generate(16, 16);
//! let mut client = Client::connect(handle.addr(), Duration::from_secs(5))?;
//! let Reply::Encoded { container, .. } =
//!     client.encode(img.view(), *b"CBIC", 1, 0)?
//! else {
//!     panic!("encode refused");
//! };
//! let Reply::Decoded(back) = client.decode(&container)? else {
//!     panic!("decode refused");
//! };
//! assert_eq!(back, img);
//!
//! drop(client);
//! handle.shutdown_and_join()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod signal;
