//! Minimal POSIX signal handling for graceful drain — `SIGTERM`/`SIGINT`
//! raise a process-wide flag the `cbic-serve` binary mirrors into the
//! server's shutdown flag.
//!
//! The workspace is dependency-free, so instead of the `libc` crate this
//! binds the C library's `signal(2)` directly. The handler itself is a
//! bare `extern "C"` function that performs one atomic store — the only
//! async-signal-safe action it takes.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

/// `SIGINT` signal number (Ctrl-C).
const SIGINT: i32 = 2;
/// `SIGTERM` signal number (polite termination, e.g. from `kill` or a
/// supervisor).
const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Relaxed);
}

/// Installs `SIGTERM`/`SIGINT` handlers. After this call,
/// [`shutdown_requested`] flips to `true` when either signal arrives.
pub fn install_shutdown_handler() {
    let handler: extern "C" fn(i32) = on_signal;
    // SAFETY: `signal` is the C library's own registration call; the
    // handler only stores to a static atomic, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

/// Whether a `SIGTERM`/`SIGINT` has arrived since
/// [`install_shutdown_handler`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Relaxed)
}
