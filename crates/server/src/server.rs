//! The service: a TCP accept loop feeding a bounded queue of connections
//! to a sharded pool of worker threads, each owning one reusable
//! [`EncoderSession`]/[`DecoderSession`] pair and one [`CodecRegistry`].
//!
//! # Architecture
//!
//! ```text
//!             accept loop (nonblocking, polls shutdown flag)
//!                  │  try_send          ── full ──▶ Busy reply, close
//!                  ▼
//!       bounded sync_channel<TcpStream>      (explicit backpressure)
//!                  │
//!      ┌───────────┼───────────┐
//!   worker 0    worker 1    worker N-1       (sharded session pool)
//!   sessions    sessions    sessions
//! ```
//!
//! Workers serve a connection request-by-request until the peer closes,
//! a transport error occurs, or shutdown begins. During shutdown the
//! accept loop stops, queued connections are *drained* (their in-flight
//! request is answered), and any further request on a live connection is
//! answered [`Status::Draining`] before the socket closes — so a SIGTERM
//! never abandons a request mid-reply.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use cbic_core::{CodecConfig, DecoderSession, EncoderSession, MAX_LANES};
use cbic_image::registry::CodecRegistry;
use cbic_image::{CbicError, DecodeOptions, EncodeOptions, Image, ModelMode, Parallelism};
use cbic_universal::codecs::default_registry;

use crate::metrics::Metrics;
use crate::protocol::{
    error_body, read_frame, split_decode_roi, write_frame, EncodeRequest, Frame, Op, Status,
    PAYLOAD_BITS_UNTRACKED,
};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (each owns its own codec sessions). `0` means one
    /// per available hardware thread.
    pub workers: usize,
    /// Bounded work-queue capacity: connections waiting for a worker
    /// beyond this are refused with [`Status::Busy`].
    pub queue_capacity: usize,
    /// Largest accepted request frame body, in bytes. Larger frames are
    /// answered [`Status::TooLarge`] without reading the body.
    pub max_frame_bytes: usize,
    /// Per-socket read timeout; an idle connection is dropped after it.
    pub read_timeout: Duration,
    /// Per-socket write timeout.
    pub write_timeout: Duration,
    /// Interval of the one-line stderr metrics summary. `None` disables
    /// the reporter thread.
    pub summary_interval: Option<Duration>,
}

impl Default for ServerConfig {
    /// One worker per hardware thread, a 64-connection queue, a 64 MiB
    /// frame ceiling, 10 s socket timeouts, no stderr reporter.
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            max_frame_bytes: 64 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            summary_interval: None,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// A bound, not-yet-running service. [`run`](Self::run) blocks the
/// calling thread until the shutdown flag is raised (by a signal handler
/// or another thread) and the drain completes.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener. The service does not accept until
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Socket-level failures from bind.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            config,
            metrics: Arc::new(Metrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// The shutdown flag; raising it makes [`run`](Self::run) stop
    /// accepting, drain, and return.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Runs the accept loop on the calling thread until shutdown, then
    /// drains the queue, joins the workers, and prints a final summary.
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are counted in
    /// metrics and never abort the service.
    pub fn run(self) -> io::Result<()> {
        let workers = self.config.effective_workers();
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(self.config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for id in 0..workers {
            let rx = rx.clone();
            let metrics = self.metrics.clone();
            let shutdown = self.shutdown.clone();
            let config = self.config.clone();
            pool.push(
                thread::Builder::new()
                    .name(format!("cbic-worker-{id}"))
                    .spawn(move || worker_loop(&rx, &metrics, &shutdown, &config))
                    .expect("spawn worker"),
            );
        }
        let reporter = self.config.summary_interval.map(|interval| {
            let metrics = self.metrics.clone();
            let shutdown = self.shutdown.clone();
            thread::spawn(move || {
                while !shutdown.load(Relaxed) {
                    thread::sleep(interval);
                    eprintln!("{}", metrics.summary_line());
                }
            })
        });

        self.listener.set_nonblocking(true)?;
        while !self.shutdown.load(Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connections.fetch_add(1, Relaxed);
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    let _ = stream.set_nonblocking(false);
                    // Replies are single small frames; Nagle + delayed ACK
                    // would add ~200 ms to every round trip.
                    let _ = stream.set_nodelay(true);
                    match tx.try_send(stream) {
                        Ok(()) => {
                            self.metrics.queue_depth.fetch_add(1, Relaxed);
                        }
                        Err(TrySendError::Full(mut stream)) => {
                            // Explicit backpressure: a structured Busy
                            // reply, never an unbounded queue.
                            self.metrics.busy_rejections.fetch_add(1, Relaxed);
                            let body = error_body(Status::Busy, "work queue full");
                            let _ = write_frame(&mut stream, &body);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: close the queue; workers finish what is queued (answering
        // Draining to any *new* request on a live connection) and exit.
        drop(tx);
        for handle in pool {
            let _ = handle.join();
        }
        if let Some(handle) = reporter {
            let _ = handle.join();
        }
        eprintln!("cbic-serve: drained. {}", self.metrics.summary_line());
        Ok(())
    }

    /// Test/embedding convenience: runs the service on a background
    /// thread and returns a handle that can stop and join it.
    ///
    /// # Errors
    ///
    /// Propagates [`local_addr`](Self::local_addr) failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let metrics = self.metrics();
        let shutdown = self.shutdown_flag();
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            metrics,
            shutdown,
            thread,
        })
    }
}

/// Handle to a [`Server`] running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The service's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Raises the shutdown flag without waiting: the accept loop stops,
    /// and live connections get [`Status::Draining`] on their next
    /// request. Call [`shutdown_and_join`](Self::shutdown_and_join) to
    /// wait for the drain.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Relaxed);
    }

    /// Raises the shutdown flag, waits for the drain, and returns the
    /// accept loop's result.
    ///
    /// # Errors
    ///
    /// The accept loop's fatal error, if it had one.
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shutdown.store(true, Relaxed);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Per-worker state: the codec registry plus reusable proposed-codec
/// sessions, allocated once per worker and reused across every request
/// the worker serves (the paper pipeline's context banks and line
/// buffers are reset in place, not reallocated).
struct WorkerState {
    registry: CodecRegistry,
    proposed_magic: [u8; 4],
    encoder: EncoderSession,
    decoder: DecoderSession,
}

impl WorkerState {
    fn new() -> Self {
        let registry = default_registry();
        let proposed_magic = registry
            .by_name("proposed")
            .and_then(|c| c.magic())
            .expect("proposed codec is registered with a magic");
        Self {
            registry,
            proposed_magic,
            encoder: EncoderSession::new(&CodecConfig::default()),
            decoder: DecoderSession::new(),
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    let mut state = WorkerState::new();
    loop {
        // Holding the lock only for the recv keeps the pool sharded: one
        // queued connection wakes exactly one worker.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(stream) = stream else { return };
        metrics.queue_depth.fetch_sub(1, Relaxed);
        serve_connection(stream, &mut state, metrics, shutdown, config);
    }
}

/// Serves one connection until EOF, a transport error, a protocol
/// violation, or shutdown. Never panics on malformed input.
fn serve_connection(
    mut stream: TcpStream,
    state: &mut WorkerState,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    loop {
        let body = match read_frame(&mut stream, config.max_frame_bytes) {
            Ok(Frame::Body(body)) => body,
            Ok(Frame::Eof) => return,
            Ok(Frame::TooLarge(len)) => {
                metrics.too_large.fetch_add(1, Relaxed);
                let msg = format!(
                    "frame of {len} bytes exceeds the {}-byte ceiling",
                    config.max_frame_bytes
                );
                let _ = reply(&mut stream, metrics, &error_body(Status::TooLarge, &msg));
                return;
            }
            Err(_) => {
                // Timeout, reset, or EOF mid-frame: count and close —
                // never a panic, never a half-read request served.
                metrics.io_errors.fetch_add(1, Relaxed);
                return;
            }
        };
        metrics.bytes_in.fetch_add(body.len() as u64, Relaxed);
        if shutdown.load(Relaxed) {
            metrics.draining_rejections.fetch_add(1, Relaxed);
            let body = error_body(Status::Draining, "server is draining");
            let _ = reply(&mut stream, metrics, &body);
            return;
        }
        let response = handle_request(&body, state, metrics);
        if reply(&mut stream, metrics, &response).is_err() {
            metrics.io_errors.fetch_add(1, Relaxed);
            return;
        }
    }
}

fn reply(stream: &mut TcpStream, metrics: &Metrics, body: &[u8]) -> io::Result<()> {
    metrics.bytes_out.fetch_add(body.len() as u64, Relaxed);
    write_frame(stream, body)
}

/// Dispatches one parsed frame body. Infallible: every failure becomes a
/// structured error reply.
fn handle_request(body: &[u8], state: &mut WorkerState, metrics: &Metrics) -> Vec<u8> {
    let Some(&op_byte) = body.first() else {
        metrics.bad_requests.fetch_add(1, Relaxed);
        return error_body(Status::BadRequest, "empty frame body");
    };
    let Some(op) = Op::from_byte(op_byte) else {
        metrics.bad_requests.fetch_add(1, Relaxed);
        return error_body(Status::BadRequest, &format!("unknown op {op_byte}"));
    };
    match op {
        // Codec operations are timed wall-clock around the handler (parse
        // through reply assembly — the part a client can't measure from
        // outside without the transport in the number); only served
        // requests land in the histogram, so rejects don't skew the tail.
        Op::Encode => {
            let start = std::time::Instant::now();
            let reply = handle_encode(&body[1..], state, metrics);
            if reply.first() == Some(&(Status::Ok as u8)) {
                metrics
                    .encode_latency
                    .observe_us(start.elapsed().as_micros() as u64);
            }
            reply
        }
        Op::Decode => {
            let start = std::time::Instant::now();
            let reply = handle_decode(&body[1..], state, metrics);
            if reply.first() == Some(&(Status::Ok as u8)) {
                metrics
                    .decode_latency
                    .observe_us(start.elapsed().as_micros() as u64);
            }
            reply
        }
        Op::Probe => handle_probe(&body[1..], state, metrics),
        Op::Metrics => {
            metrics.metrics_ok.fetch_add(1, Relaxed);
            let text = metrics.render();
            let mut reply = Vec::with_capacity(1 + text.len());
            reply.push(Status::Ok as u8);
            reply.extend_from_slice(text.as_bytes());
            reply
        }
    }
}

fn handle_encode(rest: &[u8], state: &mut WorkerState, metrics: &Metrics) -> Vec<u8> {
    let req = match EncodeRequest::parse(rest) {
        Ok(req) => req,
        Err(msg) => {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(Status::BadRequest, &msg);
        }
    };
    let lanes = req.lanes as usize;
    if !(1..=MAX_LANES).contains(&lanes) {
        metrics.bad_requests.fetch_add(1, Relaxed);
        return error_body(
            Status::BadRequest,
            &format!("lane count {lanes} outside 1..={MAX_LANES}"),
        );
    }
    let model = if req.model == 0 {
        ModelMode::Classic
    } else {
        ModelMode::WideHash {
            banks_log2: req.model,
        }
    };
    if let Err(msg) = model.validate() {
        metrics.bad_requests.fetch_add(1, Relaxed);
        return error_body(Status::BadRequest, &msg);
    }
    if !model.is_classic() {
        // Codecs that cannot honor the request must refuse it up front —
        // silently encoding with the classic model would hand back a
        // container the client did not ask for.
        let supported = state
            .registry
            .by_magic(req.magic)
            .is_some_and(|c| c.model_modes().contains(&"wide"));
        if !supported {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(
                Status::BadRequest,
                &format!("magic {:?} does not support the wide-hash model", req.magic),
            );
        }
    }
    let img = match Image::from_samples(
        req.width as usize,
        req.height as usize,
        req.bit_depth,
        req.samples,
    ) {
        Ok(img) => img,
        Err(e) => {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(Status::BadRequest, &e.to_string());
        }
    };

    let mut container = Vec::new();
    let payload_bits = if let Some((tile_w, tile_h)) = req.tile {
        // A v4 seekable tile grid: the registry codec carries the tile
        // geometry through EncodeOptions (the resident session is the
        // flat-container fast path and does not tile).
        if req.magic != state.proposed_magic {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(
                Status::BadRequest,
                &format!(
                    "tile geometry applies to the proposed codec, not magic {:?}",
                    req.magic
                ),
            );
        }
        let Some(codec) = state.registry.by_magic(req.magic) else {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(
                Status::BadRequest,
                &format!("no codec with magic {:?}", req.magic),
            );
        };
        let opts = EncodeOptions::new()
            .with_lanes(lanes)
            .with_tile(u32::from(tile_w), u32::from(tile_h))
            .with_model(model)
            .with_parallelism(Parallelism::from_threads(req.threads as usize));
        match codec.encode(img.view(), &opts, &mut container) {
            Ok(stats) => stats.payload_bits,
            Err(e) => return codec_error(metrics, &e),
        }
    } else if req.magic == state.proposed_magic && req.threads <= 1 && model.is_classic() {
        // The hot path: the worker's resident EncoderSession — context
        // banks, line buffers, and lane coders reset in place. Wide-model
        // requests go through the registry codec below, so the resident
        // session's classic context banks are never resized per request.
        state.encoder.set_lanes(lanes);
        match state.encoder.encode(img.view(), &mut container) {
            Ok(stats) => Some(stats.payload_bits),
            Err(e) => return codec_error(metrics, &e),
        }
    } else {
        let Some(codec) = state.registry.by_magic(req.magic) else {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(
                Status::BadRequest,
                &format!("no codec with magic {:?}", req.magic),
            );
        };
        let opts = EncodeOptions::new()
            .with_lanes(lanes)
            .with_model(model)
            .with_parallelism(Parallelism::from_threads(req.threads as usize));
        match codec.encode(img.view(), &opts, &mut container) {
            Ok(stats) => stats.payload_bits,
            Err(e) => return codec_error(metrics, &e),
        }
    };

    metrics.encode_ok.fetch_add(1, Relaxed);
    metrics
        .pixels_encoded
        .fetch_add(img.pixel_count() as u64, Relaxed);
    metrics.observe_bpp(container.len() as f64 * 8.0 / img.pixel_count() as f64);
    let mut reply = Vec::with_capacity(9 + container.len());
    reply.push(Status::Ok as u8);
    reply.extend_from_slice(&payload_bits.unwrap_or(PAYLOAD_BITS_UNTRACKED).to_le_bytes());
    reply.extend_from_slice(&container);
    reply
}

fn decode_container(rest: &[u8], state: &mut WorkerState) -> Result<Image, CbicError> {
    if rest.get(..4) == Some(&state.proposed_magic[..]) {
        // Resident DecoderSession for the paper codec's containers.
        state.decoder.decode(&mut &rest[..])
    } else {
        state
            .registry
            .decode_stream(&mut &rest[..], &DecodeOptions::default())
    }
}

fn handle_decode(rest: &[u8], state: &mut WorkerState, metrics: &Metrics) -> Vec<u8> {
    let (roi, rest) = match split_decode_roi(rest) {
        Ok(parts) => parts,
        Err(msg) => {
            metrics.bad_requests.fetch_add(1, Relaxed);
            return error_body(Status::BadRequest, &msg);
        }
    };
    let img = if let Some((x, y, w, h)) = roi {
        let rect = cbic_image::Rect::new(x, y, w, h);
        if rest.get(..4) == Some(&state.proposed_magic[..]) {
            // Proposed-codec containers: over a v4 grid only the
            // covering tiles are decoded; flat v1–v3 decode fully and
            // crop. Out-of-bounds rects come back as structured errors.
            match cbic_core::decode_roi_any(rest, rect, Parallelism::Sequential) {
                Ok(img) => img,
                Err(e) => return codec_error(metrics, &e),
            }
        } else {
            // Other codecs have no random-access path: decode, then crop.
            let full = match decode_container(rest, state) {
                Ok(img) => img,
                Err(e) => return codec_error(metrics, &e),
            };
            let (x1, y1) = (u64::from(x) + u64::from(w), u64::from(y) + u64::from(h));
            if w == 0 || h == 0 || x1 > full.width() as u64 || y1 > full.height() as u64 {
                metrics.bad_requests.fetch_add(1, Relaxed);
                return error_body(
                    Status::BadRequest,
                    &format!(
                        "ROI {w}x{h} at ({x}, {y}) outside the {}x{} image",
                        full.width(),
                        full.height()
                    ),
                );
            }
            full.view()
                .crop(x as usize, y as usize, w as usize, h as usize)
                .to_image()
        }
    } else {
        match decode_container(rest, state) {
            Ok(img) => img,
            Err(e) => return codec_error(metrics, &e),
        }
    };
    metrics.decode_ok.fetch_add(1, Relaxed);
    metrics
        .pixels_decoded
        .fetch_add(img.pixel_count() as u64, Relaxed);
    let wide = img.bit_depth() > 8;
    let mut reply = Vec::with_capacity(10 + img.pixel_count() * if wide { 2 } else { 1 });
    reply.push(Status::Ok as u8);
    reply.extend_from_slice(&(img.width() as u32).to_le_bytes());
    reply.extend_from_slice(&(img.height() as u32).to_le_bytes());
    reply.push(img.bit_depth());
    if wide {
        for &s in img.samples() {
            reply.extend_from_slice(&s.to_le_bytes());
        }
    } else {
        reply.extend(img.samples().iter().map(|&s| s as u8));
    }
    reply
}

fn handle_probe(rest: &[u8], state: &mut WorkerState, metrics: &Metrics) -> Vec<u8> {
    let Some(name) = state.registry.detect(rest).map(|c| c.name()) else {
        metrics.codec_errors.fetch_add(1, Relaxed);
        return error_body(Status::CodecError, "unrecognized container magic");
    };
    let img = match decode_container(rest, state) {
        Ok(img) => img,
        Err(e) => return codec_error(metrics, &e),
    };
    metrics.probe_ok.fetch_add(1, Relaxed);
    let mut reply = Vec::with_capacity(11 + name.len());
    reply.push(Status::Ok as u8);
    reply.push(name.len() as u8);
    reply.extend_from_slice(name.as_bytes());
    reply.extend_from_slice(&(img.width() as u32).to_le_bytes());
    reply.extend_from_slice(&(img.height() as u32).to_le_bytes());
    reply.push(img.bit_depth());
    reply
}

fn codec_error(metrics: &Metrics, err: &dyn std::fmt::Display) -> Vec<u8> {
    metrics.codec_errors.fetch_add(1, Relaxed);
    error_body(Status::CodecError, &err.to_string())
}
