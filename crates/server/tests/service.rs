//! Live-socket integration tests: a real [`Server`] on an ephemeral
//! port, driven through the real [`Client`] — per-codec round-trips,
//! structured rejection of oversized and truncated requests, busy
//! backpressure, a concurrent soak, and the graceful drain.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use cbic_core::{compress_with_lanes, CodecConfig};
use cbic_image::corpus::CorpusImage;
use cbic_image::Image;
use cbic_server::client::{Client, Reply};
use cbic_server::protocol::Status;
use cbic_server::server::{Server, ServerConfig, ServerHandle};
use cbic_universal::codecs::default_registry;

const TIMEOUT: Duration = Duration::from_secs(10);

fn spawn_server(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

#[test]
fn every_registry_codec_roundtrips_over_the_socket() {
    let handle = spawn_server(test_config());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Goldhill.generate(32, 32);
    let registry = default_registry();
    for codec in registry.codecs() {
        let magic = codec.magic().expect("workspace codecs are magic-routed");
        // Threads exercise the tiled codec's parallel path; others ignore it.
        let threads = if codec.name() == "tiled" { 2 } else { 0 };
        let Reply::Encoded { container, .. } = client
            .encode(img.view(), magic, 1, threads)
            .expect("encode rpc")
        else {
            panic!("{} encode refused", codec.name());
        };
        assert_eq!(&container[..4], &magic, "{}", codec.name());
        let Reply::Decoded(back) = client.decode(&container).expect("decode rpc") else {
            panic!("{} decode refused", codec.name());
        };
        assert_eq!(back, img, "{}", codec.name());
        // And the service identifies its own output.
        let Reply::Probed {
            codec: probed,
            width,
            height,
            bit_depth,
        } = client.probe(&container).expect("probe rpc")
        else {
            panic!("{} probe refused", codec.name());
        };
        assert_eq!(probed, codec.name());
        assert_eq!((width, height, bit_depth), (32, 32, 8));
    }
    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn lane_encodes_match_the_local_v3_container_bit_for_bit() {
    let handle = spawn_server(test_config());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Lena.generate(24, 24);
    for lanes in [1u8, 2, 4, 8] {
        let Reply::Encoded {
            container,
            payload_bits,
        } = client
            .encode(img.view(), *b"CBIC", lanes, 0)
            .expect("encode rpc")
        else {
            panic!("lanes {lanes}: encode refused");
        };
        let local = compress_with_lanes(img.view(), &CodecConfig::default(), lanes as usize);
        assert_eq!(container, local, "lanes {lanes}");
        // The session path reports exact payload bits (satellite 1's
        // accounting), bounded by the container's payload bytes.
        let bits = payload_bits.expect("proposed codec tracks payload bits");
        assert!(
            bits > 0 && bits <= container.len() as u64 * 8,
            "lanes {lanes}"
        );
    }
    // 16-bit samples over the same wire format.
    let deep = Image::from_fn16(20, 20, 12, |x, y| ((x * 101 + y * 57) % 4096) as u16);
    let Reply::Encoded { container, .. } = client
        .encode(deep.view(), *b"CBIC", 2, 0)
        .expect("encode rpc")
    else {
        panic!("12-bit encode refused");
    };
    let Reply::Decoded(back) = client.decode(&container).expect("decode rpc") else {
        panic!("12-bit decode refused");
    };
    assert_eq!(back, deep);
    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn session_reuse_is_deterministic_across_requests() {
    // The same image encoded twice on one connection (same worker
    // session, reset in place) must produce identical bytes — and they
    // must match a fresh server's first encode.
    let handle = spawn_server(ServerConfig {
        workers: 1,
        ..test_config()
    });
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Barb.generate(32, 32);
    let mut encodes = Vec::new();
    for lanes in [4u8, 1, 4] {
        let Reply::Encoded { container, .. } = client
            .encode(img.view(), *b"CBIC", lanes, 0)
            .expect("encode rpc")
        else {
            panic!("encode refused");
        };
        encodes.push(container);
    }
    assert_eq!(encodes[0], encodes[2], "session reuse must be stateless");
    assert_eq!(
        encodes[1],
        cbic_core::compress(img.view(), &CodecConfig::default()),
        "interleaved lane counts must not leak state"
    );
    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn oversized_frames_are_refused_before_the_body_is_read() {
    let handle = spawn_server(ServerConfig {
        max_frame_bytes: 1024,
        ..test_config()
    });
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    // Declare a 2 MiB frame; send only the prefix. The server must
    // answer TooLarge immediately without waiting for (or allocating)
    // the body.
    client
        .send_raw(&(2u32 << 20).to_le_bytes())
        .expect("send oversized length");
    let reply = client.read_reply().expect("too-large reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::TooLarge));
    assert_eq!(handle.metrics().too_large.load(Relaxed), 1);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn truncated_frames_and_garbage_never_kill_the_server() {
    let handle = spawn_server(test_config());

    // Half a frame, then EOF.
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    client.send_raw(&100u32.to_le_bytes()).expect("length");
    client.send_raw(&[0u8; 10]).expect("partial body");
    client.finish().expect("half-close");
    client.drain();

    // A complete frame holding a malformed encode body.
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let reply = client.roundtrip(&[1u8, 2, 3]).expect("reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::BadRequest));

    // An unknown op byte.
    let reply = client.roundtrip(&[99u8]).expect("reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::BadRequest));

    // Garbage container bytes to DECODE.
    let mut body = vec![2u8];
    body.extend_from_slice(b"NOPE this is not a container");
    let reply = client.roundtrip(&body).expect("reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::CodecError));

    // A truncated (but magic-valid) container to DECODE.
    let img = CorpusImage::Zelda.generate(16, 16);
    let container = cbic_core::compress(img.view(), &CodecConfig::default());
    let mut body = vec![2u8];
    body.extend_from_slice(&container[..container.len() / 2]);
    let reply = client.roundtrip(&body).expect("reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::CodecError));

    // After all of that, the server still serves correct work.
    let Reply::Encoded { container, .. } = client
        .encode(img.view(), *b"CBIC", 1, 0)
        .expect("encode rpc")
    else {
        panic!("encode refused");
    };
    let Reply::Decoded(back) = client.decode(&container).expect("decode rpc") else {
        panic!("decode refused");
    };
    assert_eq!(back, img);
    assert!(handle.metrics().io_errors.load(Relaxed) >= 1);
    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn full_queue_answers_busy_instead_of_queueing_unboundedly() {
    let handle = spawn_server(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });

    // Occupy the single worker: a connection holding an unfinished frame
    // keeps it blocked in read until the 2 s socket timeout.
    let mut hog = TcpStream::connect(handle.addr()).expect("connect hog");
    hog.write_all(&64u32.to_le_bytes()).expect("partial frame");
    std::thread::sleep(Duration::from_millis(300));

    // Fill the one queue slot with an idle connection.
    let _queued = TcpStream::connect(handle.addr()).expect("connect queued");
    std::thread::sleep(Duration::from_millis(300));

    // The next connection must be refused with a structured Busy reply.
    let mut refused = Client::connect(handle.addr(), TIMEOUT).expect("connect refused");
    let reply = refused.read_reply().expect("busy reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::Busy));
    assert!(handle.metrics().busy_rejections.load(Relaxed) >= 1);
    drop(hog);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn concurrent_soak_counts_every_request_exactly_once() {
    const CONNS: usize = 8;
    const REQS: usize = 12;
    let handle = spawn_server(ServerConfig {
        workers: 4,
        ..test_config()
    });
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for worker in 0..CONNS {
            scope.spawn(move || {
                let mut client = Client::connect(addr, TIMEOUT).expect("connect");
                let img = CorpusImage::ALL[worker % CorpusImage::ALL.len()].generate(24, 24);
                for i in 0..REQS {
                    let lanes = [1u8, 2, 4][i % 3];
                    let Reply::Encoded { container, .. } = client
                        .encode(img.view(), *b"CBIC", lanes, 0)
                        .expect("encode rpc")
                    else {
                        panic!("encode refused");
                    };
                    let Reply::Decoded(back) = client.decode(&container).expect("decode rpc")
                    else {
                        panic!("decode refused");
                    };
                    assert_eq!(back, img, "conn {worker} req {i}");
                }
            });
        }
    });
    let metrics = handle.metrics();
    assert_eq!(metrics.encode_ok.load(Relaxed), (CONNS * REQS) as u64);
    assert_eq!(metrics.decode_ok.load(Relaxed), (CONNS * REQS) as u64);
    assert_eq!(
        metrics.pixels_encoded.load(Relaxed),
        (CONNS * REQS * 24 * 24) as u64
    );
    assert_eq!(metrics.queue_depth.load(Relaxed), 0);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn metrics_endpoint_renders_the_counters() {
    let handle = spawn_server(test_config());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Peppers.generate(16, 16);
    let Reply::Encoded { .. } = client
        .encode(img.view(), *b"CBIC", 1, 0)
        .expect("encode rpc")
    else {
        panic!("encode refused");
    };
    let Reply::Metrics(text) = client.metrics().expect("metrics rpc") else {
        panic!("metrics refused");
    };
    assert!(text.contains("cbic_encode_requests_total 1"), "{text}");
    assert!(text.contains("cbic_connections_total 1"), "{text}");
    assert!(text.contains("cbic_encode_bpp_bucket"), "{text}");
    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn drain_answers_draining_then_exits_cleanly() {
    let handle = spawn_server(test_config());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Boat.generate(16, 16);

    // A request before the drain is served normally.
    let Reply::Encoded { container, .. } = client
        .encode(img.view(), *b"CBIC", 1, 0)
        .expect("encode rpc")
    else {
        panic!("encode refused");
    };

    handle.begin_shutdown();
    std::thread::sleep(Duration::from_millis(100));

    // The live connection's next request gets a structured Draining
    // reply, not a dropped socket mid-write.
    let mut body = vec![2u8];
    body.extend_from_slice(&container);
    let reply = client.roundtrip(&body).expect("draining reply");
    assert_eq!(Status::from_byte(reply[0]), Some(Status::Draining));
    assert!(handle.metrics().draining_rejections.load(Relaxed) >= 1);

    drop(client);
    handle.shutdown_and_join().expect("clean drain");
}

#[test]
fn tiled_encode_and_roi_decode_over_a_live_socket() {
    let handle = spawn_server(test_config());
    let mut client = Client::connect(handle.addr(), TIMEOUT).expect("connect");
    let img = CorpusImage::Barb.generate(64, 48);

    // ENCODE with v4 tile geometry: the container must be a v4 grid.
    let Reply::Encoded { container, .. } = client
        .encode_tiled(img.view(), *b"CBIC", 2, 2, Some((16, 16)))
        .expect("tiled encode rpc")
    else {
        panic!("tiled encode refused");
    };
    assert_eq!(&container[..4], b"CBIC");
    assert_eq!(container[4], 4, "tile geometry must produce a v4 container");

    // Whole-image DECODE of the v4 container still round-trips.
    let Reply::Decoded(back) = client.decode(&container).expect("decode rpc") else {
        panic!("v4 decode refused");
    };
    assert_eq!(back, img);

    // ROI decode returns exactly the crop — including one straddling
    // tile boundaries and a single pixel.
    for (x, y, w, h) in [(10u32, 12u32, 20u32, 20u32), (15, 15, 2, 2), (63, 47, 1, 1)] {
        let Reply::Decoded(crop) = client
            .decode_roi(&container, x, y, w, h)
            .expect("roi decode rpc")
        else {
            panic!("roi decode refused");
        };
        let reference = img
            .view()
            .crop(x as usize, y as usize, w as usize, h as usize)
            .to_image();
        assert_eq!(crop, reference, "roi ({x}, {y}) {w}x{h}");
    }

    // ROI over a *flat* container decodes fully server-side and crops.
    let flat = compress_with_lanes(img.view(), &CodecConfig::default(), 1);
    let Reply::Decoded(crop) = client
        .decode_roi(&flat, 5, 5, 10, 10)
        .expect("flat roi rpc")
    else {
        panic!("flat roi refused");
    };
    assert_eq!(crop, img.view().crop(5, 5, 10, 10).to_image());

    // Out-of-bounds rects are structured codec errors, not hangups.
    let Reply::Error { status, .. } = client
        .decode_roi(&container, 60, 40, 10, 10)
        .expect("oob roi rpc")
    else {
        panic!("out-of-bounds roi must be refused");
    };
    assert_eq!(status, Status::CodecError);

    // Tile geometry on a codec without a grid path is a BadRequest.
    let Reply::Error { status, .. } = client
        .encode_tiled(img.view(), *b"CBT1", 1, 0, Some((16, 16)))
        .expect("bad tiled encode rpc")
    else {
        panic!("tiled encode for a gridless codec must be refused");
    };
    assert!(
        matches!(status, Status::BadRequest),
        "expected BadRequest, got {status:?}"
    );

    handle.shutdown_and_join().expect("clean drain");
}
