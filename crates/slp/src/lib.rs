//! SLP(M0) baseline: Switched Linear Prediction with adaptive Golomb-Rice
//! coding.
//!
//! The paper's Table 1 includes "SLP (Switched Linear Prediction)", a
//! low-complexity Golomb-Rice scheme, without citing a reference; no public
//! specification exists. This crate is a *reconstruction* from the
//! description (DESIGN.md §6, substitution 3):
//!
//! * a bank of **linear predictors** — `W`, `N`, the plane `W + N − NW`,
//!   and the `(W+N)/2` average — **switched per pixel** by local gradient
//!   tests (no side information: the decoder runs the same tests on
//!   reconstructed pixels). The default switch is the MED rule (itself a
//!   switched linear predictor), with explicit `W`/`N` overrides on strong
//!   edges;
//! * residuals wrapped mod 256, zig-zag mapped, and coded with
//!   **length-limited Golomb-Rice** codes whose parameter adapts per
//!   activity class (16 classes by quantized gradient energy), LOCO-style;
//! * LOCO-style **bias correction** per (activity class × predictor)
//!   context — 32 integer correction registers;
//! * **M0** = the base mode: no run mode, single fixed predictor bank.
//!
//! On the synthetic corpus this reconstruction lands 0.2–0.3 bpp behind
//! JPEG-LS (the paper's SLP edges JPEG-LS out by 0.03 bpp; without a
//! specification, its exact context/bias machinery cannot be recovered).
//! The qualitative position is preserved: a low-complexity Golomb-Rice
//! scheme clearly behind both context-based arithmetic coders, which is
//! what Table 1 uses it for.
//!
//! # Examples
//!
//! ```
//! use cbic_image::corpus::CorpusImage;
//! use cbic_slp::{compress, decompress};
//!
//! let img = CorpusImage::Goldhill.generate(48, 48);
//! let bytes = compress(img.view());
//! assert_eq!(decompress(&bytes)?, img);
//! # Ok::<(), cbic_slp::SlpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(test)]
mod proptests;

use cbic_bitio::{BitReader, BitWriter};
use cbic_image::framing::{self, FramingError};
use cbic_image::{Image, ImageView, ImageViewMut};
use cbic_rice::{decode_limited, encode_limited, unzigzag, zigzag, AdaptiveRice};
use std::fmt;

/// Errors returned by the container API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SlpError {
    /// Stream does not start with the `CBSL` magic.
    BadMagic,
    /// Stream shorter than a header.
    Truncated,
    /// A header field is invalid.
    InvalidHeader(String),
}

impl fmt::Display for SlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "missing CBSL magic"),
            Self::Truncated => write!(f, "truncated stream"),
            Self::InvalidHeader(m) => write!(f, "invalid header: {m}"),
        }
    }
}

impl std::error::Error for SlpError {}

impl From<SlpError> for cbic_image::CbicError {
    fn from(e: SlpError) -> Self {
        use cbic_image::CbicError;
        match e {
            SlpError::BadMagic => CbicError::BadMagic { found: None },
            SlpError::Truncated => CbicError::Truncated,
            SlpError::InvalidHeader(msg) => CbicError::InvalidContainer(msg),
        }
    }
}

/// Gradient threshold for switching to a directional predictor
/// (8-bit scale; scaled by `2^(n-8)` for deeper samples).
const SWITCH_T: i32 = 48;
/// Activity-class thresholds on `dh + dv` (16 classes, 8-bit scale).
const CLASS_T: [i32; 15] = [2, 4, 7, 10, 14, 20, 28, 40, 55, 70, 90, 110, 135, 160, 220];

/// `2^(n-1)`: the residual wrap modulus half for an `n`-bit depth.
fn half_for_depth(bit_depth: u8) -> i32 {
    1 << (bit_depth - 1)
}

/// Golomb length limit for an `n`-bit depth (same rationale as JPEG-LS:
/// bounds worst-case expansion) — 32 at 8 bits, 64 at 16.
fn limit(bit_depth: u8) -> u32 {
    let bpp = u32::from(bit_depth).max(2);
    2 * (bpp + bpp.max(8))
}

/// Statistics accumulated while encoding one image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeStats {
    /// Pixels coded.
    pub pixels: u64,
    /// Payload bits produced.
    pub payload_bits: u64,
    /// How often each predictor was selected: `[W, N, plane, average]`.
    pub predictor_uses: [u64; 4],
}

impl EncodeStats {
    /// Compressed bit rate in bits per pixel.
    pub fn bits_per_pixel(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.payload_bits as f64 / self.pixels as f64
        }
    }
}

/// The switched prediction shared by encoder and decoder: returns the
/// predictor index and the (clamped) prediction for column `x` given the
/// causal row slices (`cur` up to `x`, `n1`/`n2` the rows above when they
/// exist). `shift` scales the 8-bit thresholds to the sample depth and
/// `half` is `2^(n-1)`.
fn predict(
    cur: &[u16],
    n1: Option<&[u16]>,
    n2: Option<&[u16]>,
    x: usize,
    shift: u32,
    half: i32,
) -> (usize, i32, usize) {
    let width = cur.len();
    let w = if x >= 1 {
        i32::from(cur[x - 1])
    } else if let Some(n1) = n1 {
        i32::from(n1[x])
    } else {
        half
    };
    let ww = if x >= 2 { i32::from(cur[x - 2]) } else { w };
    let n = n1.map_or(w, |n1| i32::from(n1[x]));
    let nn = n2.map_or(n, |n2| i32::from(n2[x]));
    let nw = match n1 {
        Some(n1) if x >= 1 => i32::from(n1[x - 1]),
        _ => n,
    };
    let ne = match n1 {
        Some(n1) if x + 1 < width => i32::from(n1[x + 1]),
        _ => n,
    };

    let dh = (w - ww).abs() + (n - nw).abs() + (n - ne).abs();
    let dv = (w - nw).abs() + (n - nn).abs();

    let (idx, p) = if dv - dh > SWITCH_T << shift {
        (0, w) // horizontal edge: predict W
    } else if dh - dv > SWITCH_T << shift {
        (1, n) // vertical edge: predict N
    } else if nw >= w.max(n) {
        (3, w.min(n)) // MED switch: edge towards the smaller neighbour
    } else if nw <= w.min(n) {
        (3, w.max(n)) // MED switch: edge towards the larger neighbour
    } else {
        (2, w + n - nw) // planar fit
    };

    // Activity class from total gradient energy, at 8-bit scale.
    let act = (dh + dv) >> shift;
    let mut class = 0usize;
    for &t in &CLASS_T {
        if act > t {
            class += 1;
        }
    }
    (idx, p.clamp(0, 2 * half - 1), class)
}

#[inline]
fn wrap(e: i32, half: i32) -> i32 {
    ((e + half).rem_euclid(2 * half)) - half
}

/// LOCO-style bias tracker: per context, `B` accumulates signed errors,
/// `N` counts them, and `C` is nudged whenever the average drifts past
/// ±1/2 (exactly JPEG-LS A.6.2 without the reset coupling).
#[derive(Debug, Clone, Default)]
struct Bias {
    b: i32,
    n: i32,
    c: i32,
}

impl Bias {
    #[inline]
    fn update(&mut self, err: i32) {
        self.b += err;
        if self.n == 64 {
            self.b >>= 1;
            self.n >>= 1;
        }
        self.n += 1;
        if self.b <= -self.n {
            self.b += self.n;
            if self.c > -128 {
                self.c -= 1;
            }
            if self.b <= -self.n {
                self.b = -self.n + 1;
            }
        } else if self.b > 0 {
            self.b -= self.n;
            if self.c < 127 {
                self.c += 1;
            }
            if self.b > 0 {
                self.b = 0;
            }
        }
    }
}

/// Encodes the pixels of `img`, returning the raw payload and statistics.
pub fn encode_raw(img: ImageView<'_>) -> (Vec<u8>, EncodeStats) {
    let (width, height) = img.dimensions();
    let depth = img.bit_depth();
    let (half, shift) = (half_for_depth(depth), u32::from(depth.saturating_sub(8)));
    let (limit, qbpp) = (limit(depth), u32::from(depth));
    let mut w = BitWriter::new();
    let mut contexts: Vec<AdaptiveRice> = (0..64).map(|_| AdaptiveRice::new(4, 64)).collect();
    let mut bias: Vec<Bias> = (0..64).map(|_| Bias::default()).collect();
    let mut stats = EncodeStats {
        pixels: (width * height) as u64,
        ..EncodeStats::default()
    };

    for y in 0..height {
        let cur = img.row(y);
        let n1 = (y >= 1).then(|| img.row(y - 1));
        let n2 = (y >= 2).then(|| img.row(y - 2));
        for x in 0..width {
            let (pidx, p, class) = predict(cur, n1, n2, x, shift, half);
            stats.predictor_uses[pidx] += 1;
            let bctx = class * 4 + pidx;
            let p = (p + bias[bctx].c).clamp(0, 2 * half - 1);
            let e = wrap(i32::from(cur[x]) - p, half);
            let v = zigzag(e);
            debug_assert!(v < (2 * half) as u32);
            let k = contexts[bctx].k();
            encode_limited(&mut w, v, k, limit, qbpp);
            contexts[bctx].update(e.unsigned_abs());
            bias[bctx].update(e);
        }
    }
    stats.payload_bits = w.bits_written();
    (w.into_bytes(), stats)
}

/// Decodes a payload produced by [`encode_raw`] with matching dimensions
/// and bit depth.
pub fn decode_raw(bytes: &[u8], width: usize, height: usize, bit_depth: u8) -> Image {
    let (half, shift) = (
        half_for_depth(bit_depth),
        u32::from(bit_depth.saturating_sub(8)),
    );
    let (limit, qbpp) = (limit(bit_depth), u32::from(bit_depth));
    let mut r = BitReader::new(bytes);
    let mut contexts: Vec<AdaptiveRice> = (0..64).map(|_| AdaptiveRice::new(4, 64)).collect();
    let mut bias: Vec<Bias> = (0..64).map(|_| Bias::default()).collect();
    let mut img = Image::with_depth(width, height, bit_depth);
    let mut out: ImageViewMut<'_> = img.view_mut();

    for y in 0..height {
        let (n2, n1, cur) = out.causal_rows_mut(y);
        for x in 0..width {
            let (pidx, p, class) = predict(cur, n1, n2, x, shift, half);
            let bctx = class * 4 + pidx;
            let p = (p + bias[bctx].c).clamp(0, 2 * half - 1);
            let k = contexts[bctx].k();
            let v = decode_limited(&mut r, k, limit, qbpp).unwrap_or(0);
            let e = unzigzag(v);
            cur[x] = (p + e).rem_euclid(2 * half) as u16;
            contexts[bctx].update(e.unsigned_abs());
            bias[bctx].update(e);
        }
    }
    img
}

const MAGIC: &[u8; 4] = b"CBSL";

impl From<FramingError> for SlpError {
    fn from(e: FramingError) -> Self {
        match e {
            FramingError::BadMagic => SlpError::BadMagic,
            FramingError::Truncated => SlpError::Truncated,
            FramingError::Invalid(msg) => SlpError::InvalidHeader(msg),
        }
    }
}

/// Compresses the pixels of a view into a self-describing container.
pub fn compress(img: ImageView<'_>) -> Vec<u8> {
    let (payload, _) = encode_raw(img);
    let mut out = Vec::with_capacity(payload.len() + 17);
    write_container(img, &payload, &mut out).expect("Vec writes cannot fail");
    out
}

/// This crate's container framing — the shared dimensioned header of
/// [`cbic_image::framing`] (legacy 8-bit layout, deep-sentinel extension)
/// followed directly by the payload — written once here so [`compress`]
/// and the [`cbic_image::Codec`] impl cannot drift apart.
fn write_container(
    img: ImageView<'_>,
    payload: &[u8],
    out: &mut dyn std::io::Write,
) -> std::io::Result<()> {
    framing::write_dims_header(out, MAGIC, img.width(), img.height(), img.bit_depth())?;
    out.write_all(payload)
}

/// Parses this crate's container framing, returning
/// `(width, height, bit_depth, payload)`. Shared by [`decompress`] and
/// the CLI's `info` reporting.
pub fn parse_container(bytes: &[u8]) -> Result<(usize, usize, u8, &[u8]), SlpError> {
    Ok(framing::parse_dims_header(bytes, MAGIC)?)
}

/// Decompresses a container produced by [`compress`].
///
/// # Errors
///
/// Returns [`SlpError`] on malformed headers.
pub fn decompress(bytes: &[u8]) -> Result<Image, SlpError> {
    let (width, height, bit_depth, payload) = parse_container(bytes)?;
    Ok(decode_raw(payload, width, height, bit_depth))
}

/// SLP(M0) on the unified [`cbic_image::Codec`] surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct Slp;

impl cbic_image::Codec for Slp {
    fn name(&self) -> &'static str {
        "slp"
    }

    fn magic(&self) -> Option<[u8; 4]> {
        Some(*MAGIC)
    }

    fn encode(
        &self,
        img: ImageView<'_>,
        _opts: &cbic_image::EncodeOptions,
        sink: &mut dyn std::io::Write,
    ) -> Result<cbic_image::EncodeStats, cbic_image::CbicError> {
        let (payload, stats) = encode_raw(img);
        write_container(img, &payload, sink)?;
        Ok(cbic_image::EncodeStats::new(
            stats.pixels,
            framing::dims_header_len(img.bit_depth()) + payload.len() as u64,
            Some(stats.payload_bits),
        ))
    }

    fn decode(
        &self,
        source: &mut dyn std::io::Read,
        _opts: &cbic_image::DecodeOptions,
    ) -> Result<Image, cbic_image::CbicError> {
        let mut bytes = Vec::new();
        source.read_to_end(&mut bytes)?;
        decompress(&bytes).map_err(cbic_image::CbicError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbic_image::corpus::CorpusImage;

    fn roundtrip(img: &Image) -> EncodeStats {
        let (bytes, stats) = encode_raw(img.view());
        let back = decode_raw(&bytes, img.width(), img.height(), img.bit_depth());
        assert_eq!(&back, img, "lossless roundtrip failed");
        stats
    }

    #[test]
    fn roundtrip_corpus() {
        for (name, img) in cbic_image::corpus::generate(48) {
            let stats = roundtrip(&img);
            assert!(stats.payload_bits > 0, "{name:?}");
        }
    }

    #[test]
    fn roundtrip_tiny() {
        for (w, h) in [(1, 1), (1, 6), (6, 1), (3, 5)] {
            roundtrip(&Image::from_fn(w, h, |x, y| (x * 91 + y * 57) as u8));
        }
    }

    #[test]
    fn roundtrip_deep_depths() {
        for depth in [10u8, 12, 16] {
            let img = Image::from_fn16(20, 20, depth, |x, y| {
                ((x as u32 * 641 + y as u32 * 2801) % (1u32 << depth.min(15))) as u16
            });
            let back = decompress(&compress(img.view())).unwrap();
            assert_eq!(back, img, "depth {depth}");
            assert_eq!(back.bit_depth(), depth);
        }
    }

    #[test]
    fn container_roundtrip() {
        let img = CorpusImage::Zelda.generate(32, 32);
        assert_eq!(decompress(&compress(img.view())).unwrap(), img);
    }

    #[test]
    fn container_rejects_garbage() {
        assert_eq!(decompress(b"x"), Err(SlpError::Truncated));
        assert_eq!(decompress(b"YYYY00000000"), Err(SlpError::BadMagic));
    }

    #[test]
    fn constant_image_compresses_hard() {
        let stats = roundtrip(&Image::from_fn(96, 96, |_, _| 123));
        assert!(
            stats.bits_per_pixel() < 1.1,
            "constant cost {} bpp (k adapts down to 0 -> 1 bit/px)",
            stats.bits_per_pixel()
        );
    }

    #[test]
    fn predictor_switching_happens() {
        // A saddle (bright to the west, dark to the north) keeps NW
        // strictly between W and N, so the planar predictor fires.
        let saddle = Image::from_fn(48, 48, |x, y| (3 * x + 100 - y) as u8);
        let s1 = roundtrip(&saddle);
        assert!(
            s1.predictor_uses[2] > s1.predictor_uses[0],
            "saddle favours the plane predictor: {:?}",
            s1.predictor_uses
        );
        // A monotone ramp pins NW at the local minimum: the MED switch
        // selects max(W, N).
        let ramp = Image::from_fn(48, 48, |x, y| (x + y * 2) as u8);
        let s2 = roundtrip(&ramp);
        assert!(
            s2.predictor_uses[3] > s2.predictor_uses[2],
            "ramp favours the MED switch: {:?}",
            s2.predictor_uses
        );
    }

    #[test]
    fn edges_select_directional_predictors() {
        // Strong vertical edge -> N predictor used on the edge column.
        let img = Image::from_fn(48, 48, |x, _| if x < 24 { 40 } else { 210 });
        let stats = roundtrip(&img);
        assert!(stats.predictor_uses[1] > 0, "{:?}", stats.predictor_uses);
    }

    #[test]
    fn noise_stays_bounded() {
        let img = Image::from_fn(64, 64, |x, y| {
            (cbic_image::synth::lattice(9, x as i64, y as i64) * 256.0) as u8
        });
        let stats = roundtrip(&img);
        assert!(stats.bits_per_pixel() < 9.5);
    }

    #[test]
    fn beats_order0_on_structured_content() {
        let img = CorpusImage::Boat.generate(96, 96);
        let stats = roundtrip(&img);
        assert!(stats.bits_per_pixel() < img.entropy());
    }
}
