//! Property-based tests: SLP losslessness over arbitrary images.

use proptest::prelude::*;

use crate::{compress, decode_raw, decompress, encode_raw};
use cbic_image::Image;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        proptest::collection::vec(any::<u8>(), w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized to match"))
    })
}

proptest! {
    /// Arbitrary pixels round-trip.
    #[test]
    fn roundtrip_arbitrary_images(img in arb_image()) {
        let (bytes, stats) = encode_raw(img.view());
        prop_assert_eq!(stats.pixels as usize, img.pixel_count());
        prop_assert_eq!(decode_raw(&bytes, img.width(), img.height(), img.bit_depth()), img);
    }

    /// The container API round-trips and validates.
    #[test]
    fn container_roundtrip(img in arb_image()) {
        let bytes = compress(img.view());
        prop_assert_eq!(decompress(&bytes).expect("valid container"), img);
    }

    /// Worst-case expansion is bounded by the Golomb length limit.
    #[test]
    fn expansion_is_bounded(img in arb_image()) {
        let (bytes, _) = encode_raw(img.view());
        prop_assert!(bytes.len() * 8 <= img.pixel_count() * 33 + 64);
    }

    /// Predictor-use counters account for every pixel.
    #[test]
    fn predictor_uses_sum_to_pixels(img in arb_image()) {
        let (_, stats) = encode_raw(img.view());
        let total: u64 = stats.predictor_uses.iter().sum();
        prop_assert_eq!(total, stats.pixels);
    }
}
